//! The [`Count`] trait: the arithmetic interface required by the
//! propagation passes.
//!
//! Only the operations the propagation engine actually performs are
//! included: counts are built from `u64` seeds, accumulated with
//! addition, combined with multiplication (prefix × suffix impact
//! products), compared, and occasionally decremented by one
//! (`saturating_sub`). Division is deliberately absent — ratios are
//! computed through [`crate::ratio`], which goes through mantissa /
//! exponent decomposition so that astronomically large exact counts can
//! still produce a meaningful `f64` quotient.

/// An unsigned counter suitable for path/copy counting in DAGs.
///
/// Implementations must behave like a (possibly clamped) unsigned
/// integer: `zero() < one()`, addition and multiplication are monotone,
/// and `Ord` is a total order consistent with the represented magnitude.
pub trait Count:
    Clone
    + PartialEq
    + Eq
    + PartialOrd
    + Ord
    + core::fmt::Debug
    + core::fmt::Display
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity (one copy of an item).
    fn one() -> Self;

    /// Embed a `u64`.
    fn from_u64(v: u64) -> Self;

    /// `self + other`, clamping at the representation maximum for the
    /// saturating implementations.
    fn add(&self, other: &Self) -> Self;

    /// In-place [`Count::add`]. Implementations override this when an
    /// allocation can be avoided.
    fn add_assign(&mut self, other: &Self) {
        *self = self.add(other);
    }

    /// `max(self - other, 0)`.
    fn saturating_sub(&self, other: &Self) -> Self;

    /// `self * other`, clamping at the representation maximum for the
    /// saturating implementations.
    fn mul(&self, other: &Self) -> Self;

    /// Whether this count is exactly zero.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Lossy conversion for reporting and ratio computation. May be
    /// `f64::INFINITY` for values beyond `f64` range.
    fn to_f64(&self) -> f64;

    /// Decompose as `mantissa × 2^exponent` with `mantissa ∈ [1, 2)`
    /// (or `(0.0, 0)` for zero). Used by [`crate::ratio`] so quotients
    /// of huge counts stay finite.
    fn to_f64_parts(&self) -> (f64, i64) {
        let v = self.to_f64();
        if v == 0.0 {
            return (0.0, 0);
        }
        debug_assert!(
            v.is_finite(),
            "to_f64_parts default impl needs a finite to_f64"
        );
        let exp = v.log2().floor() as i64;
        (v / (2f64).powi(exp as i32), exp)
    }

    /// Whether the value has been clamped at the representation maximum.
    ///
    /// Exact implementations always return `false`. Callers that need
    /// exact argmax decisions check this and escalate to [`crate::BigCount`].
    fn is_saturated(&self) -> bool {
        false
    }

    /// Human-readable name of the counter implementation (for reports).
    fn type_name() -> &'static str;
}

#[cfg(test)]
mod tests {
    use crate::{Approx64, BigCount, Count, Sat64, Wide128};

    fn laws<C: Count>() {
        let zero = C::zero();
        let one = C::one();
        let five = C::from_u64(5);
        assert!(zero < one);
        assert!(one < five);
        assert!(zero.is_zero());
        assert!(!one.is_zero());
        assert_eq!(zero.add(&five), five);
        assert_eq!(five.add(&zero), five);
        assert_eq!(one.mul(&five), five);
        assert_eq!(five.mul(&one), five);
        assert_eq!(five.mul(&zero), zero);
        assert_eq!(five.saturating_sub(&one), C::from_u64(4));
        assert_eq!(one.saturating_sub(&five), zero);
        let mut acc = C::zero();
        for _ in 0..5 {
            acc.add_assign(&one);
        }
        assert_eq!(acc, five);
        assert!((five.to_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn sat64_laws() {
        laws::<Sat64>();
    }

    #[test]
    fn wide128_laws() {
        laws::<Wide128>();
    }

    #[test]
    fn approx64_laws() {
        laws::<Approx64>();
    }

    #[test]
    fn bigcount_laws() {
        laws::<BigCount>();
    }

    #[test]
    fn f64_parts_roundtrip() {
        for v in [1u64, 2, 3, 100, 12345, u64::MAX / 7] {
            let c = Sat64::from_u64(v);
            let (m, e) = c.to_f64_parts();
            let recon = m * (2f64).powi(e as i32);
            let rel = (recon - v as f64).abs() / v as f64;
            assert!(rel < 1e-9, "v={v} recon={recon}");
        }
    }
}
