//! Stream-vs-materialized equivalence (the fp-scale contract): a graph
//! built by `Csr32::from_stream` — chunked edges, two passes, u32
//! indices, no intermediate edge `Vec` — must be *bit-identical* to the
//! in-memory `Csr::from_digraph` path. Same adjacency in the same
//! order, same topological order, same solver placements. Random DAGs,
//! pinned by proptest.
//!
//! Also pins the budget accountant's failure path: a build that trips
//! `BudgetExceeded` must release every reservation it made, leaving the
//! ledger clean and later builds unaffected.

use fp_core::algorithms::{GreedyAll, GreedyMax, Solver};
use fp_core::graph::{DiGraph, NodeId};
use fp_core::num::Wide128;
use fp_core::propagation::CGraph;
use fp_core::scale::{Csr32, MemBudget, ScaleError, VecStream};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Shape raw random pairs into a DAG edge list on `n` nodes: every
/// edge points from a lower id to a higher id, so any pair set is
/// acyclic by construction. Deduplicated and sorted, so both build
/// paths consume the identical sequence; nodes may be unreachable or
/// isolated (the node-count hint must still agree).
fn dag_edges(n: usize, raw: &[(u32, u32)]) -> Vec<(u32, u32)> {
    raw.iter()
        .map(|&(a, b)| {
            let u = a % (n as u32 - 1);
            let v = u + 1 + b % (n as u32 - 1 - u);
            (u, v)
        })
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect()
}

/// Build the same graph both ways and return `(materialized, streamed)`.
fn both_paths(n: usize, edges: &[(u32, u32)]) -> (CGraph, CGraph) {
    let g = DiGraph::from_pairs(
        n,
        edges
            .iter()
            .map(|&(u, v)| (u as usize, v as usize))
            .collect::<Vec<_>>(),
    )
    .expect("u < v edges form a DAG");
    let materialized = CGraph::new(&g, NodeId::new(0)).expect("DAG");

    let budget = MemBudget::unlimited();
    let mut stream = VecStream::new(edges.to_vec(), Some(n as u64)).with_chunk(7);
    let csr32 = Csr32::from_stream(&mut stream, &budget).expect("unlimited budget");
    let bytes = csr32.bytes();
    let streamed = CGraph::from_csr(csr32.into_csr(), NodeId::new(0)).expect("DAG");
    budget.release(bytes);
    (materialized, streamed)
}

proptest! {
    /// Adjacency equivalence: same node/edge counts, same children and
    /// parents per node, in the same storage order.
    #[test]
    fn streamed_csr_matches_the_materialized_csr(
        n in 2usize..48,
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..96),
    ) {
        let edges = dag_edges(n, &raw);
        let (mat, st) = both_paths(n, &edges);
        prop_assert_eq!(mat.node_count(), st.node_count());
        prop_assert_eq!(mat.edge_count(), st.edge_count());
        for v in 0..n {
            let v = NodeId::new(v);
            prop_assert_eq!(mat.csr().children(v), st.csr().children(v));
            prop_assert_eq!(mat.csr().parents(v), st.csr().parents(v));
        }
    }

    /// Topological-order equivalence: identical sequences, not merely
    /// both valid — solver tie-breaking depends on it.
    #[test]
    fn streamed_topo_order_is_identical(
        n in 2usize..48,
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..96),
    ) {
        let edges = dag_edges(n, &raw);
        let (mat, st) = both_paths(n, &edges);
        prop_assert_eq!(mat.topo(), st.topo());
    }

    /// Placement equivalence: Greedy_All and Greedy_Max pick the same
    /// filters in the same order on both builds, for every k.
    #[test]
    fn solvers_place_identically_on_both_builds(
        n in 2usize..48,
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..96),
    ) {
        let edges = dag_edges(n, &raw);
        let (mat, st) = both_paths(n, &edges);
        for k in 0..=4usize {
            let a = GreedyAll::<Wide128>::new().place(&mat, k, 0);
            let b = GreedyAll::<Wide128>::new().place(&st, k, 0);
            prop_assert_eq!(a.nodes(), b.nodes(), "GreedyAll k={}", k);
            let a = GreedyMax::<Wide128>::new().place(&mat, k, 0);
            let b = GreedyMax::<Wide128>::new().place(&st, k, 0);
            prop_assert_eq!(a.nodes(), b.nodes(), "GreedyMax k={}", k);
        }
    }
}

/// A build that trips the cap fails with the typed error, rolls every
/// reservation back (nothing live), and leaves the accountant usable:
/// the identical build under a sufficient cap then succeeds and matches
/// an unconstrained build bit-for-bit.
#[test]
fn budget_exceeded_rolls_back_and_leaves_the_ledger_clean() {
    let edges: Vec<(u32, u32)> = (0u32..2_000).map(|i| (i, i + 1)).collect();

    let tight = MemBudget::new(Some(64));
    let mut stream = VecStream::new(edges.clone(), None);
    match Csr32::from_stream(&mut stream, &tight) {
        Err(ScaleError::BudgetExceeded { .. }) => {}
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert_eq!(tight.live(), 0, "failed build must release everything");

    // Same accountant object, raised cap: the rollback left no debris.
    tight.set_cap(Some(1 << 20));
    let mut stream = VecStream::new(edges.clone(), None);
    let constrained = Csr32::from_stream(&mut stream, &tight).expect("1 MiB covers a 2k-node path");
    let bytes = constrained.bytes();
    assert_eq!(tight.live(), bytes, "graph bytes stay reserved on success");

    let unlimited = MemBudget::unlimited();
    let mut stream = VecStream::new(edges, None);
    let free = Csr32::from_stream(&mut stream, &unlimited).expect("unlimited");
    assert_eq!(constrained.node_count(), free.node_count());
    assert_eq!(constrained.edge_count(), free.edge_count());
    assert!(
        constrained.edges().eq(free.edges()),
        "identical edge storage"
    );

    tight.release(bytes);
    unlimited.release(free.bytes());
    assert_eq!(tight.live(), 0);
}
