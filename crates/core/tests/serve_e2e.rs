//! End-to-end tests of `fp serve`: concurrent clients over real
//! sockets, error paths over the wire, and the actual `fp` binary
//! (Cargo exposes it as `CARGO_BIN_EXE_fp`).
//!
//! The contract under test is the one DESIGN.md §10 pins: a serve
//! answer for `(graph, solver, k, seed)` is **bit-identical** to the
//! batch `solve_ladder` answer, no matter how many clients interleave
//! their queries against the shared warm session.

use fp_core::prelude::*;
use fp_core::registry::GraphRegistry;
use fp_core::serve::{ApiState, ServeClient, Server};
use fp_results::protocol::ServeCall;
use fp_results::Json;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Command, Stdio};
use std::thread;

/// Figure 1 as a labeled edge list.
const FIG1: &str = "s x\ns y\nx z1\nx z2\ny z2\ny z3\nz1 w\nz2 w\nz3 w\n";

fn fig1_registry() -> GraphRegistry {
    let registry = GraphRegistry::new();
    registry.put_edge_list("fig1", "s", FIG1).unwrap();
    registry
}

/// Batch ladder for `(solver, seed)` on the registry's fig1:
/// `k -> (placement node indices, fr bits)`.
fn batch_ladder(
    registry: &GraphRegistry,
    solver: SolverKind,
    seed: u64,
    kmax: usize,
) -> BTreeMap<usize, (Vec<usize>, u64)> {
    let ks: Vec<usize> = (0..=kmax).collect();
    registry
        .get("fig1")
        .unwrap()
        .problem
        .solve_ladder(solver, &ks, seed)
        .into_iter()
        .map(|(k, placement, fr)| {
            let nodes = placement.nodes().iter().map(|v| v.index()).collect();
            (k, (nodes, fr.to_bits()))
        })
        .collect()
}

/// Pull `(k, fr bits, placement indices)` out of a 200 query reply.
fn reply_rows(body: &Json) -> Vec<(usize, u64, Vec<usize>)> {
    body.expect("results")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|row| {
            let k = row.expect("k").unwrap().as_usize().unwrap();
            let fr = row.expect("fr").unwrap().as_f64().unwrap().to_bits();
            let nodes = row
                .expect("placement")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_usize().unwrap())
                .collect();
            (k, fr, nodes)
        })
        .collect()
}

/// Many clients, one shared warm session per solver, adversarially
/// interleaved budgets — every reply must match the batch ladder bit
/// for bit. Covers both session workers: the rung-cached nested walk
/// (greedy family) and the per-k one-shot memo (Rand_W, Rand_I).
#[test]
fn concurrent_interleaved_clients_match_the_batch_ladder() {
    const KMAX: usize = 4;
    const CLIENTS: usize = 6;
    const SEED: u64 = 42;
    let registry = fig1_registry();
    let expected: BTreeMap<&'static str, _> = SolverKind::PAPER_SET
        .iter()
        .map(|&solver| (solver.label(), batch_ladder(&registry, solver, SEED, KMAX)))
        .collect();

    let server = Server::bind("127.0.0.1:0", ApiState::new(registry, None)).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    // One shared session per paper solver.
    let mut sessions = Vec::new();
    let mut opener = ServeClient::connect(addr).unwrap();
    for solver in SolverKind::PAPER_SET {
        let reply = opener
            .call(ServeCall::SessionOpen {
                graph: "fig1".into(),
                solver,
                seed: SEED,
            })
            .unwrap();
        assert_eq!(reply.status, 201, "{}", reply.body.to_compact());
        let id = reply
            .body
            .expect("session")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        sessions.push((solver, id));
    }

    // Each client walks the budgets in a different order — descending,
    // ascending, zig-zag — so smaller-k queries constantly land on
    // sessions already advanced past them, and multi-k ladders overlap
    // single-k probes.
    let mut workers = Vec::new();
    for client in 0..CLIENTS {
        let sessions = sessions.clone();
        let expected = expected.clone();
        workers.push(thread::spawn(move || {
            let mut conn = ServeClient::connect(addr).unwrap();
            for round in 0..3 {
                for (solver, id) in &sessions {
                    let ks: Vec<usize> = match (client + round) % 3 {
                        0 => (0..=KMAX).rev().collect(),
                        1 => (0..=KMAX).collect(),
                        _ => vec![(client + round) % (KMAX + 1)],
                    };
                    let reply = conn
                        .call(ServeCall::Query {
                            session: id.clone(),
                            ks: ks.clone(),
                            deadline_ms: None,
                        })
                        .unwrap();
                    assert_eq!(reply.status, 200, "{}", reply.body.to_compact());
                    let rows = reply_rows(&reply.body);
                    assert_eq!(rows.len(), ks.len(), "answers in the caller's order");
                    for (asked, (k, fr, nodes)) in ks.iter().zip(&rows) {
                        assert_eq!(asked, k);
                        let (want_nodes, want_fr) = &expected[solver.label()][k];
                        assert_eq!(
                            fr,
                            want_fr,
                            "{} k={k} client {client}: serve fr diverged from batch",
                            solver.label()
                        );
                        assert_eq!(nodes, want_nodes, "{} k={k}", solver.label());
                    }
                }
            }
            conn.hang_up().unwrap();
        }));
    }
    for worker in workers {
        worker.join().unwrap();
    }
    opener.hang_up().unwrap();
    handle.stop().unwrap();
}

/// Every operator mistake gets a precise wire-level status: bad
/// uploads 400, conflicts 409, unknown ids 404, duplicate session
/// creates 409 (naming the survivor), expired deadlines 408.
#[test]
fn error_paths_over_the_wire() {
    let server = Server::bind("127.0.0.1:0", ApiState::new(fig1_registry(), None)).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = ServeClient::connect(addr).unwrap();

    // Malformed edge list: 400 with the parser's line number.
    let reply = client
        .call(ServeCall::GraphPut {
            name: "broken".into(),
            source: "a".into(),
            edges_text: "a b\nonly-one-token\n".into(),
        })
        .unwrap();
    assert_eq!(reply.status, 400);
    assert!(reply.body.to_compact().contains("line 2"));

    // Re-using a name for different content: 409.
    let reply = client
        .call(ServeCall::GraphPut {
            name: "fig1".into(),
            source: "a".into(),
            edges_text: "a b\n".into(),
        })
        .unwrap();
    assert_eq!(reply.status, 409);

    // Opening a session on a graph that is not registered: 404.
    let open = |graph: &str| ServeCall::SessionOpen {
        graph: graph.into(),
        solver: SolverKind::GreedyAll,
        seed: 0,
    };
    assert_eq!(client.call(open("nope")).unwrap().status, 404);

    // Duplicate session create: 409, and the reply names the surviving
    // session so the client can just use it.
    let first = client.call(open("fig1")).unwrap();
    assert_eq!(first.status, 201);
    let id = first
        .body
        .expect("session")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let dup = client.call(open("fig1")).unwrap();
    assert_eq!(dup.status, 409);
    assert_eq!(
        dup.body.expect("session").unwrap().as_str().unwrap(),
        id,
        "conflict names the survivor"
    );

    // Query against an id nobody issued: 404.
    let query = |session: &str, ks: Vec<usize>, deadline_ms: Option<u64>| ServeCall::Query {
        session: session.into(),
        ks,
        deadline_ms,
    };
    assert_eq!(
        client
            .call(query("feedfacedeadbeef", vec![1], None))
            .unwrap()
            .status,
        404
    );

    // An empty budget list is a client bug, not a no-op: 400.
    assert_eq!(client.call(query(&id, vec![], None)).unwrap().status, 400);

    // A zero deadline on a cold budget: deterministic 408 that reports
    // how far the ladder had warmed; the retry without a deadline then
    // completes (the partial ladder is kept, never discarded).
    let expired = client.call(query(&id, vec![3], Some(0))).unwrap();
    assert_eq!(expired.status, 408, "{}", expired.body.to_compact());
    assert!(expired.body.expect("ready_rungs").is_ok());
    let retry = client.call(query(&id, vec![3], None)).unwrap();
    assert_eq!(retry.status, 200);
    // ... and once warm, the same budget is served even at deadline 0.
    assert_eq!(
        client.call(query(&id, vec![3], Some(0))).unwrap().status,
        200
    );

    // Closing twice: first 200, then 404; queries after close: 404.
    let close = ServeCall::SessionClose {
        session: id.clone(),
    };
    assert_eq!(client.call(close.clone()).unwrap().status, 200);
    assert_eq!(client.call(close).unwrap().status, 404);
    assert_eq!(client.call(query(&id, vec![1], None)).unwrap().status, 404);

    client.hang_up().unwrap();
    handle.stop().unwrap();
}

/// A `stop` call shuts the daemon down cleanly: the accept loop exits,
/// warm sessions are torn down, and the port actually closes.
#[test]
fn stop_closes_the_port_and_tears_down_sessions() {
    let server = Server::bind("127.0.0.1:0", ApiState::new(fig1_registry(), None)).unwrap();
    let addr = server.local_addr();
    let state = server.state().clone();
    let handle = server.spawn();

    let mut client = ServeClient::connect(addr).unwrap();
    let open = client
        .call(ServeCall::SessionOpen {
            graph: "fig1".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
        })
        .unwrap();
    assert_eq!(open.status, 201);

    let reply = client.call(ServeCall::Stop).unwrap();
    assert_eq!(reply.status, 200);
    handle.stop().unwrap(); // joins the accept loop
    assert!(state.sessions().is_empty(), "sessions torn down on stop");
    // The listener is gone: a fresh connection must be refused. (A few
    // retries absorb TIME_WAIT scheduling noise.)
    let refused = (0..20).any(|_| {
        thread::sleep(std::time::Duration::from_millis(10));
        TcpStream::connect(addr).is_err()
    });
    assert!(refused, "port {addr} still accepting after stop");
}

/// Drive the *real* `fp` binary: `fp serve` on an ephemeral port,
/// health + placement over plain HTTP, `POST /stop`, clean exit. The
/// placement answer must be bit-identical to the batch answer computed
/// in-process — the same gate CI's serve-smoke job applies.
#[test]
fn fp_serve_binary_answers_http_and_stops_cleanly() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fp"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn fp serve");

    // The daemon announces its bound address on stderr before serving.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut banner = String::new();
    stderr.read_line(&mut banner).unwrap();
    let addr: SocketAddr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .parse()
        .unwrap();

    let http = |request: String| -> (u16, Json) {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        let status: u16 = response.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        (status, Json::parse(body).unwrap())
    };
    let get = |path: &str| http(format!("GET {path} HTTP/1.1\r\nHost: fp\r\n\r\n"));
    let post = |path: &str| {
        http(format!(
            "POST {path} HTTP/1.1\r\nHost: fp\r\nContent-Length: 0\r\n\r\n"
        ))
    };

    let (status, health) = get("/health");
    assert_eq!(status, 200, "{}", health.to_compact());
    assert!(health.expect("graphs").unwrap().as_usize().unwrap() > 0);

    // layered-sparse ships as a built-in; ask the daemon for Greedy_All
    // k=3 and check the FR bits against the in-process batch answer.
    let (status, session) = post("/sessions?graph=layered-sparse&solver=G_ALL&seed=0");
    assert_eq!(status, 201, "{}", session.to_compact());
    let id = session
        .expect("session")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let (status, body) = get(&format!("/sessions/{id}/placement?k=3"));
    assert_eq!(status, 200, "{}", body.to_compact());
    let served = reply_rows(&body);

    let registry = GraphRegistry::with_builtins();
    let entry = registry.get("layered-sparse").unwrap();
    let batch = entry.problem.solve_ladder(SolverKind::GreedyAll, &[3], 0);
    let (_, placement, fr) = &batch[0];
    let want: Vec<usize> = placement.nodes().iter().map(|v| v.index()).collect();
    assert_eq!(served, vec![(3, fr.to_bits(), want)]);

    let (status, stopping) = post("/stop");
    assert_eq!(status, 200, "{}", stopping.to_compact());
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "fp serve exited {:?}", out.status);
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("stopped"),
        "shutdown summary on stdout"
    );
}
