//! End-to-end tests of the process-pool sweep backend against the
//! *real* `fp` binary (Cargo builds it for us and exposes the path as
//! `CARGO_BIN_EXE_fp`).
//!
//! The two contracts under test are the ones the ISSUE pins:
//!
//! 1. `fp sweep --out A` and `fp sweep --workers 2 --out B` produce
//!    **byte-identical** run directories (the same check the
//!    `distributed-determinism` CI job performs with `diff -r`);
//! 2. killing workers mid-sweep loses no cells and still produces the
//!    bit-identical result — crashed workers are restarted and their
//!    in-flight cells re-queued.

use fp_core::prelude::*;
use fp_results::worker::{run_sweep_workers, PoolOptions, WorkerSpawner};
use std::path::{Path, PathBuf};
use std::process::Command;

/// The compiled `fp` binary.
fn fp_exe() -> &'static str {
    env!("CARGO_BIN_EXE_fp")
}

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fp-worker-it-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small layered edge list with enough structure that solvers
/// disagree and randomized trials matter.
const EDGES: &str = "s a\ns b\ns c\na d\na e\nb d\nb e\nc e\nd f\nd g\ne f\ne g\nf h\ng h\n";

/// Every (relative path, bytes) under `root`, sorted.
fn dir_contents(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).unwrap().display().to_string();
                out.push((rel, std::fs::read(&path).unwrap()));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}

/// Run the real `fp` binary, asserting success; returns stdout.
fn fp(args: &[&str], workdir: &Path) -> String {
    let out = Command::new(fp_exe())
        .args(args)
        .current_dir(workdir)
        .output()
        .expect("fp runs");
    assert!(
        out.status.success(),
        "fp {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn in_process_and_worker_run_directories_are_byte_identical() {
    let work = temp_dir("bytes");
    let input = work.join("edges.txt");
    std::fs::write(&input, EDGES).unwrap();
    let input = input.to_str().unwrap().to_string();

    let sweep = |extra: &[&str], out: &str| -> String {
        let mut args = vec![
            "sweep", "--input", &input, "--source", "s", "--kmax", "4", "--trials", "3", "--seed",
            "11", "--out", out,
        ];
        args.extend_from_slice(extra);
        fp(&args, &work)
    };

    let table_a = sweep(&["--jobs", "2"], "run-a");
    let table_b = sweep(&["--workers", "2"], "run-b");

    // Identical tables on stdout (modulo the path in the status line)…
    assert_eq!(
        table_a.split_once('\n').unwrap().1,
        table_b.split_once('\n').unwrap().1,
        "stdout tables must match"
    );
    // …and byte-identical stores on disk: same file set, same bytes.
    let a = dir_contents(&work.join("run-a"));
    let b = dir_contents(&work.join("run-b"));
    assert_eq!(
        a.iter().map(|(p, _)| p).collect::<Vec<_>>(),
        b.iter().map(|(p, _)| p).collect::<Vec<_>>(),
        "same file tree"
    );
    for ((path_a, bytes_a), (_, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(bytes_a, bytes_b, "{path_a} differs between backends");
    }
    assert!(
        a.iter().any(|(p, _)| p.ends_with("result.json")),
        "a real run was stored: {a:?}"
    );

    // A worker rerun over the in-process store is a pure cache hit.
    let again = sweep(&["--workers", "2"], "run-a");
    assert!(again.contains("cache hit"), "{again}");

    let _ = std::fs::remove_dir_all(&work);
}

/// Spawner for the real `fp worker`, optionally injecting a failure
/// after `fail_after` served cells.
fn fp_worker_spawner(fail_after: Option<usize>) -> WorkerSpawner {
    let spawner = WorkerSpawner::new(fp_exe()).arg("worker");
    match fail_after {
        Some(n) => spawner.env("FP_WORKER_FAIL_AFTER", n.to_string()),
        None => spawner,
    }
}

fn pool_problem() -> (DiGraph, NodeId, SweepConfig) {
    let (g, labels) = fp_core::graph::from_edge_list(EDGES).unwrap();
    let source = labels.iter().position(|l| l == "s").unwrap();
    let cfg = SweepConfig {
        ks: (0..=4).collect(),
        trials: 4,
        seed: 0xF1157E5,
        solvers: SolverKind::PAPER_SET.to_vec(),
    };
    (g, NodeId::new(source), cfg)
}

#[test]
fn killed_workers_lose_no_cells_and_keep_the_bits() {
    let (g, source, cfg) = pool_problem();
    let problem = Problem::new(&g, source).unwrap();
    let reference = run_sweep_with(&problem, &cfg, &RunnerOptions::with_jobs(1)).unwrap();

    // Every worker dies on its third request, over and over: the pool
    // must keep restarting them, re-queue each in-flight cell, and
    // still finish every cell. The paper set has 4 deterministic
    // solvers (4 curve cells) and 3 randomized ones (3 × 5 ks × 4
    // trials = 60 trial cells); 64 cells at 2 per incarnation needs
    // ~32 restarts.
    let spawner = fp_worker_spawner(Some(2));
    let via_pool = run_sweep_workers(
        &spawner,
        &g,
        source,
        &cfg,
        &PoolOptions {
            workers: 2,
            max_restarts: 200,
            ..PoolOptions::default()
        },
    )
    .unwrap();

    assert_eq!(via_pool.series.len(), reference.series.len());
    for (a, b) in via_pool.series.iter().zip(&reference.series) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.0, pb.0);
            assert_eq!(
                pa.1.to_bits(),
                pb.1.to_bits(),
                "{}@k={} must survive worker crashes bit-exactly",
                a.label,
                pa.0
            );
        }
    }
}

#[test]
fn killed_workers_do_not_corrupt_the_store() {
    // Same crash storm, but through the full CLI with --out: the store
    // must hold exactly one complete, loadable run and no debris.
    let work = temp_dir("crash-store");
    let input = work.join("edges.txt");
    std::fs::write(&input, EDGES).unwrap();

    let out = Command::new(fp_exe())
        .args([
            "sweep",
            "--input",
            input.to_str().unwrap(),
            "--source",
            "s",
            "--kmax",
            "3",
            "--trials",
            "2",
            "--workers",
            "2",
            "--out",
            "store",
        ])
        .env("FP_WORKER_FAIL_AFTER", "2")
        .current_dir(&work)
        .output()
        .expect("fp runs");
    assert!(
        out.status.success(),
        "sweep must survive crashing workers:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let store = RunStore::open(work.join("store")).unwrap();
    let runs = store.list().unwrap();
    assert_eq!(runs.len(), 1, "exactly one complete run: {runs:?}");
    let loaded = store.load(&runs[0].id).unwrap().expect("loadable");
    assert_eq!(loaded.result.series.len(), 7, "all seven solvers stored");
    // No staging debris left behind by the crashed children (only the
    // dispatcher writes the store, so there should be none at all).
    assert_eq!(store.sweep_staging(std::time::Duration::ZERO).unwrap(), 0);

    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn exhausted_restart_budget_is_an_error_not_a_partial_result() {
    let (g, source, cfg) = pool_problem();
    // Workers die after every single cell and the budget tolerates
    // only one restart: the pool must give up loudly.
    let spawner = fp_worker_spawner(Some(0));
    let err = run_sweep_workers(
        &spawner,
        &g,
        source,
        &cfg,
        &PoolOptions {
            workers: 2,
            max_restarts: 1,
            ..PoolOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("worker pool failed"), "{err}");
    assert!(err.contains("restart(s) spent"), "{err}");
}

#[test]
fn worker_subcommand_rejects_garbage_stdin() {
    use std::io::Write as _;
    let mut child = Command::new(fp_exe())
        .arg("worker")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("fp worker spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"this is not a frame stream")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        !out.status.success(),
        "garbage stdin must exit non-zero, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("frame"), "stderr names the frame: {stderr}");
}

#[test]
fn worker_pool_handles_multiple_workers_exceeding_cells() {
    // More workers than cells: the pool must clamp, not wedge.
    let (g, source, _) = pool_problem();
    let cfg = SweepConfig {
        ks: vec![0, 1],
        trials: 1,
        seed: 5,
        solvers: vec![SolverKind::GreedyAll], // one curve cell
    };
    let via_pool = run_sweep_workers(
        &fp_worker_spawner(None),
        &g,
        source,
        &cfg,
        &PoolOptions::with_workers(8),
    )
    .unwrap();
    let problem = Problem::new(&g, source).unwrap();
    let reference = run_sweep_with(&problem, &cfg, &RunnerOptions::with_jobs(1)).unwrap();
    assert_eq!(via_pool, reference);
}
