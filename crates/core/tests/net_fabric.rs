//! End-to-end tests of the remote sweep fabric: a TCP dispatcher
//! (`SweepListener` / `fp sweep --listen`) fed by real `fp worker
//! --connect` processes, under fault injection.
//!
//! The contracts under test are the ones the ISSUE pins:
//!
//! 1. a TCP sweep with one killed worker and one hung worker produces
//!    the **bit-identical** result of a single-process run, with zero
//!    lost cells;
//! 2. adversarial connections (truncated frames, oversized lengths,
//!    wrong tokens, wrong protocol versions, slow-loris handshakes)
//!    are closed without a reply and never perturb the sweep;
//! 3. a worker that crashes mid-session (chaos truncate) reconnects
//!    with backoff and keeps serving.

use fp_core::prelude::*;
use fp_results::worker::PoolOptions;
use fp_results::{NetOptions, SweepListener};
use std::io::{BufRead as _, Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// The compiled `fp` binary.
fn fp_exe() -> &'static str {
    env!("CARGO_BIN_EXE_fp")
}

const TOKEN: &str = "fabric-secret";

/// Same layered edge list the local pool tests use.
const EDGES: &str = "s a\ns b\ns c\na d\na e\nb d\nb e\nc e\nd f\nd g\ne f\ne g\nf h\ng h\n";

fn fabric_problem() -> (DiGraph, NodeId, SweepConfig) {
    let (g, labels) = fp_core::graph::from_edge_list(EDGES).unwrap();
    let source = labels.iter().position(|l| l == "s").unwrap();
    let cfg = SweepConfig {
        ks: (0..=4).collect(),
        trials: 4,
        seed: 0xFAB51C,
        solvers: SolverKind::PAPER_SET.to_vec(),
    };
    (g, NodeId::new(source), cfg)
}

fn reference(g: &DiGraph, source: NodeId, cfg: &SweepConfig) -> SweepResult {
    let problem = Problem::new(g, source).unwrap();
    run_sweep_with(&problem, cfg, &RunnerOptions::with_jobs(1)).unwrap()
}

/// Assert two sweep results agree down to the last mantissa bit.
fn assert_bits_equal(got: &SweepResult, want: &SweepResult, tag: &str) {
    assert_eq!(got.series.len(), want.series.len(), "{tag}: series count");
    for (a, b) in got.series.iter().zip(&want.series) {
        assert_eq!(a.label, b.label, "{tag}");
        assert_eq!(a.points.len(), b.points.len(), "{tag}: {}", a.label);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.0, pb.0, "{tag}: {}", a.label);
            assert_eq!(
                pa.1.to_bits(),
                pb.1.to_bits(),
                "{tag}: {}@k={} must be bit-identical",
                a.label,
                pa.0
            );
        }
    }
}

/// Spawn a real `fp worker --connect` child with extra environment.
fn spawn_worker(addr: &str, token: &str, envs: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(fp_exe());
    cmd.args(["worker", "--connect", addr, "--token", token])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().expect("fp worker spawns")
}

/// A pool tuned for tests: lost workers are declared dead after ~1.2s
/// of silence instead of the production 5s.
fn fast_pool() -> PoolOptions {
    PoolOptions {
        heartbeat_timeout: Duration::from_millis(1200),
        ..PoolOptions::default()
    }
}

#[test]
fn tcp_sweep_survives_killed_and_hung_workers_bit_for_bit() {
    let (g, source, cfg) = fabric_problem();
    let listener = SweepListener::bind("127.0.0.1:0", NetOptions::new(TOKEN)).unwrap();
    let addr = listener.local_addr().to_string();

    // One worker exits(17) for good after two served cells, one hangs
    // mid-write on its third data frame (its heartbeats stop with it —
    // the writer is held), one healthy survivor carries the sweep home.
    let mut doomed = spawn_worker(&addr, TOKEN, &[("FP_WORKER_FAIL_AFTER", "2")]);
    let mut hung = spawn_worker(&addr, TOKEN, &[("FP_CHAOS", "hang@3")]);
    let mut healthy = spawn_worker(&addr, TOKEN, &[]);

    let via_tcp = listener.run(&g, source, &cfg, &fast_pool()).unwrap();
    assert_bits_equal(&via_tcp, &reference(&g, source, &cfg), "kill+hang");

    // The hung worker sleeps for an hour by design; reap it ourselves.
    let _ = hung.kill();
    let _ = hung.wait();
    let _ = doomed.wait();
    let _ = healthy.wait();
}

#[test]
fn chaos_truncate_crash_reconnects_and_finishes_bit_for_bit() {
    let (g, source, cfg) = fabric_problem();
    let listener = SweepListener::bind("127.0.0.1:0", NetOptions::new(TOKEN)).unwrap();
    let addr = listener.local_addr().to_string();

    // The chaotic worker truncates its first response mid-frame and
    // errors out of the session; chaos fires once per process, so its
    // reconnect (after backoff) serves clean. A delayed worker stalls
    // one write by 300ms — under the heartbeat timeout, so it is
    // merely slow, never declared lost.
    let mut chaotic = spawn_worker(&addr, TOKEN, &[("FP_CHAOS", "truncate@2")]);
    let mut delayed = spawn_worker(&addr, TOKEN, &[("FP_CHAOS", "delay@2:300")]);

    let via_tcp = listener.run(&g, source, &cfg, &fast_pool()).unwrap();
    assert_bits_equal(&via_tcp, &reference(&g, source, &cfg), "truncate+delay");

    let _ = chaotic.wait();
    let _ = delayed.wait();
}

/// Write raw bytes to the listener and assert the dispatcher closes
/// the connection without ever replying.
fn assert_closed_without_reply(addr: &str, tag: &str, bytes: &[u8]) {
    let mut stream = TcpStream::connect(addr).expect(tag);
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).expect(tag);
    let mut buf = [0u8; 64];
    let n = stream
        .read(&mut buf)
        .unwrap_or_else(|e| panic!("{tag}: read failed: {e}"));
    assert_eq!(
        n, 0,
        "{tag}: dispatcher must close without a reply, got {buf:?}"
    );
}

/// A length-prefixed frame as the wire expects it.
fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = (body.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(body);
    out
}

#[test]
fn adversarial_connections_never_perturb_the_sweep() {
    let (g, source, cfg) = fabric_problem();
    let opts = NetOptions {
        // Short enough that the slow-loris probe resolves quickly.
        hello_timeout: Duration::from_millis(400),
        ..NetOptions::new(TOKEN)
    };
    let listener = SweepListener::bind("127.0.0.1:0", opts).unwrap();
    let addr = listener.local_addr().to_string();
    let pool = fast_pool();

    let via_tcp = std::thread::scope(|scope| {
        let run = scope.spawn(|| listener.run(&g, source, &cfg, &pool));

        // Every shape of hostile client, against the live listener.
        let wrong_token =
            format!(r#"{{"type":"hello","version":2,"pid":1,"token":"not-{TOKEN}"}}"#);
        let wrong_version =
            format!(r#"{{"type":"hello","version":999,"pid":1,"token":"{TOKEN}"}}"#);
        assert_closed_without_reply(&addr, "wrong token", &frame(wrong_token.as_bytes()));
        assert_closed_without_reply(&addr, "wrong version", &frame(wrong_version.as_bytes()));
        assert_closed_without_reply(
            &addr,
            "tokenless hello",
            &frame(br#"{"type":"hello","version":2,"pid":1}"#),
        );
        assert_closed_without_reply(&addr, "not json", &frame(b"GET / HTTP/1.1"));
        // Oversized declared length: rejected before any allocation.
        assert_closed_without_reply(&addr, "oversized length", &u32::MAX.to_be_bytes());
        // Truncated frame: declares 64 bytes, delivers 10, then stalls.
        let mut truncated = 64u32.to_be_bytes().to_vec();
        truncated.extend_from_slice(b"0123456789");
        assert_closed_without_reply(&addr, "truncated frame", &truncated);
        // Slow-loris: two bytes of length prefix, then silence — the
        // hello timeout must cut it off.
        assert_closed_without_reply(&addr, "slow loris", &[0, 0]);

        // A real worker with the wrong token is refused and gives up
        // with a described error (non-zero exit).
        let refused = spawn_worker(&addr, "wrong-secret", &[])
            .wait_with_output()
            .expect("refused worker runs");
        assert!(
            !refused.status.success(),
            "a wrong-token worker must exit non-zero"
        );
        let stderr = String::from_utf8_lossy(&refused.stderr);
        assert!(
            stderr.contains("bad token or protocol version"),
            "stderr explains the refusal: {stderr}"
        );

        // After all that abuse, one honest worker completes the sweep
        // and the bits are exactly the single-process bits.
        let mut honest = spawn_worker(&addr, TOKEN, &[]);
        let via_tcp = run.join().unwrap().unwrap();
        let _ = honest.wait();
        via_tcp
    });
    assert_bits_equal(&via_tcp, &reference(&g, source, &cfg), "post-abuse");
}

#[test]
fn cli_tcp_sweep_run_dir_matches_local_jobs_byte_for_byte() {
    let work = {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fp-net-it-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    };
    let input = work.join("edges.txt");
    std::fs::write(&input, EDGES).unwrap();
    let input = input.to_str().unwrap().to_string();

    let base = |out: &str| -> Vec<String> {
        [
            "sweep", "--input", &input, "--source", "s", "--kmax", "3", "--trials", "2", "--seed",
            "7", "--out", out,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    };

    // Reference run over in-process threads.
    let local = Command::new(fp_exe())
        .args(base("run-local"))
        .args(["--jobs", "2"])
        .current_dir(&work)
        .output()
        .expect("local sweep runs");
    assert!(
        local.status.success(),
        "{}",
        String::from_utf8_lossy(&local.stderr)
    );

    // The same sweep over TCP: start the dispatcher, scrape the bound
    // port off its stderr banner, join two workers.
    let mut dispatcher = Command::new(fp_exe())
        .args(base("run-tcp"))
        .args(["--listen", "127.0.0.1:0", "--token", TOKEN])
        .current_dir(&work)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("dispatcher spawns");
    let mut banner = String::new();
    let mut stderr = std::io::BufReader::new(dispatcher.stderr.take().unwrap());
    stderr.read_line(&mut banner).unwrap();
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split(' ').next())
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_string();
    // Keep draining stderr so the dispatcher can never block on a
    // full pipe.
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = stderr.read_to_string(&mut rest);
        rest
    });

    let w1 = spawn_worker(&addr, TOKEN, &[]);
    let w2 = spawn_worker(&addr, TOKEN, &[]);
    let out = dispatcher.wait_with_output().expect("dispatcher finishes");
    let tail = drain.join().unwrap();
    assert!(out.status.success(), "tcp sweep failed:\n{banner}{tail}");

    // Workers exit cleanly and report what they served.
    for (i, w) in [w1, w2].into_iter().enumerate() {
        let done = w.wait_with_output().expect("worker finishes");
        assert!(done.status.success(), "worker {i} failed");
        let stdout = String::from_utf8_lossy(&done.stdout);
        assert!(
            stdout.contains("worker: served"),
            "worker {i} prints a summary: {stdout:?}"
        );
    }

    // Byte-identical run directories, exactly like the CI `diff -r`.
    fn dir_contents(root: &std::path::Path) -> Vec<(String, Vec<u8>)> {
        fn walk(root: &std::path::Path, dir: &std::path::Path, out: &mut Vec<(String, Vec<u8>)>) {
            for entry in std::fs::read_dir(dir).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir() {
                    walk(root, &path, out);
                } else {
                    let rel = path.strip_prefix(root).unwrap().display().to_string();
                    out.push((rel, std::fs::read(&path).unwrap()));
                }
            }
        }
        let mut out = Vec::new();
        walk(root, root, &mut out);
        out.sort();
        out
    }
    let a = dir_contents(&work.join("run-local"));
    let b = dir_contents(&work.join("run-tcp"));
    assert!(!a.is_empty(), "local run stored something");
    assert_eq!(
        a.iter().map(|(p, _)| p).collect::<Vec<_>>(),
        b.iter().map(|(p, _)| p).collect::<Vec<_>>(),
        "same file tree"
    );
    for ((path, bytes_a), (_, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(bytes_a, bytes_b, "{path} differs between local and TCP");
    }

    let _ = std::fs::remove_dir_all(&work);
}
