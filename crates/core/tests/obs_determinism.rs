//! Observation is a side channel: enabling the span recorder must
//! leave every solver-visible bit untouched. These gates run the full
//! paper solver set traced and untraced and require identical
//! placements and FR bits — the contract that lets `--trace` ship on
//! production sweeps without a determinism caveat.

use fp_algorithms::SolverKind;
use fp_core::Problem;
use fp_graph::{DiGraph, NodeId};
use proptest::prelude::*;

/// Tests that toggle the process-global tracer hold this lock so a
/// concurrent `enable()` (which clears the ring) cannot race another
/// test's span-count assertion.
static TRACER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Every (k, placement, FR-bits) triple a full paper-set ladder walk
/// produces — the complete solver-visible output of a sweep cell.
fn all_ladders(g: &DiGraph, seed: u64) -> Vec<(usize, Vec<NodeId>, u64)> {
    let p = Problem::new(g, NodeId::new(0)).unwrap();
    let ks: Vec<usize> = (0..=4).collect();
    SolverKind::PAPER_SET
        .iter()
        .flat_map(|&kind| {
            p.solve_ladder(kind, &ks, seed)
                .into_iter()
                .map(|(k, placement, fr)| (k, placement.nodes().to_vec(), fr.to_bits()))
        })
        .collect()
}

fn figure1() -> DiGraph {
    DiGraph::from_pairs(
        7,
        [
            (0, 1),
            (0, 2),
            (1, 3),
            (1, 4),
            (2, 4),
            (2, 5),
            (3, 6),
            (4, 6),
            (5, 6),
        ],
    )
    .unwrap()
}

#[test]
fn traced_solves_match_untraced_bit_for_bit_on_figure1() {
    let _guard = TRACER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let g = figure1();
    fp_obs::tracer().disable();
    let untraced = all_ladders(&g, 11);
    fp_obs::tracer().enable();
    let traced = all_ladders(&g, 11);
    fp_obs::tracer().disable();
    assert!(
        !fp_obs::tracer().is_empty(),
        "the traced run records spans (tracing was live)"
    );
    assert_eq!(untraced, traced);
}

#[test]
fn dumped_chrome_trace_is_valid_json() {
    // A local tracer keeps this independent of the global-tracer tests.
    let t = fp_obs::trace::Tracer::new(16);
    t.enable();
    {
        let _outer = t.span("outer").arg("k", 3);
        let _inner = t.span("inner");
    }
    let json = t.chrome_trace_json();
    let doc = fp_results::Json::parse(&json).unwrap();
    let events = doc
        .get("traceEvents")
        .and_then(fp_results::Json::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), 2);
    for event in events {
        assert!(event
            .get("name")
            .and_then(fp_results::Json::as_str)
            .is_some());
        assert_eq!(
            event.get("ph").and_then(fp_results::Json::as_str),
            Some("X")
        );
        assert!(event.get("ts").and_then(fp_results::Json::as_f64).is_some());
        assert!(event
            .get("dur")
            .and_then(fp_results::Json::as_f64)
            .is_some());
    }
    assert_eq!(
        doc.get("overwrittenSpans")
            .and_then(fp_results::Json::as_u64),
        Some(0)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn traced_and_untraced_ladders_agree_on_random_dags(
        edges in proptest::collection::vec((0usize..10, 0usize..10), 1..40),
        seed in 0u64..1000,
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        let mut g = DiGraph::from_pairs(10, edges).unwrap();
        g.dedup_edges();
        let _guard = TRACER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        fp_obs::tracer().disable();
        let untraced = all_ladders(&g, seed);
        fp_obs::tracer().enable();
        let traced = all_ladders(&g, seed);
        fp_obs::tracer().disable();
        prop_assert_eq!(untraced, traced);
    }
}
