//! `fp loadtest`: measure the serve daemon under concurrent traffic.
//!
//! The harness spins an in-process [`Server`] on an ephemeral port,
//! opens one warm session, and drives `clients` concurrent frame
//! connections, each issuing `requests` placement queries with budgets
//! cycling through `0..=kmax` (each client starts at a different
//! offset, so budgets interleave adversarially across clients).
//!
//! Every response is **verified** against a precomputed batch
//! [`Problem::solve_ladder`](crate::Problem::solve_ladder) answer —
//! FR bits and placement nodes must match exactly — so the loadtest
//! doubles as a concurrency determinism check; a single mismatch fails
//! the run.
//!
//! Latency percentiles use the nearest-rank method over all recorded
//! round-trip times; throughput is total requests over wall time. The
//! numbers land in the `serve` section of `BENCH_baseline.json` (see
//! the `fp-bench` crate and `fp loadtest --baseline`).

use crate::registry::GraphRegistry;
use crate::serve::{ApiState, ServeClient, Server};
use fp_algorithms::SolverKind;
use fp_results::protocol::ServeCall;
use fp_results::{Json, ToJson};
use std::collections::BTreeMap;
use std::thread;
use std::time::Instant;

/// What to drive and how hard.
#[derive(Clone, Debug)]
pub struct LoadtestConfig {
    /// Registry name of the graph to query (e.g. `"fig1"`,
    /// `"layered-sparse"`).
    pub graph: String,
    /// The solver whose session is driven.
    pub solver: SolverKind,
    /// Session seed.
    pub seed: u64,
    /// Concurrent client connections.
    pub clients: usize,
    /// Queries issued per client.
    pub requests: usize,
    /// Budgets cycle through `0..=kmax`.
    pub kmax: usize,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        Self {
            graph: "layered-sparse".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
            clients: 8,
            requests: 50,
            kmax: 8,
        }
    }
}

/// The measured result of one loadtest run.
#[derive(Clone, Debug)]
pub struct LoadtestReport {
    /// The driven configuration.
    pub config: LoadtestConfig,
    /// Total requests answered (`clients × requests`).
    pub total_requests: usize,
    /// Median round-trip latency, microseconds (nearest-rank).
    pub p50_us: u64,
    /// 99th-percentile round-trip latency, microseconds (nearest-rank).
    pub p99_us: u64,
    /// Worst observed round-trip, microseconds.
    pub max_us: u64,
    /// Requests per second over the whole run.
    pub throughput_rps: f64,
    /// Wall time of the client phase, milliseconds.
    pub wall_ms: u64,
}

impl LoadtestReport {
    /// The `serve` section recorded in `BENCH_baseline.json`.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("graph", self.config.graph.to_json()),
            ("solver", self.config.solver.to_json()),
            ("seed", self.config.seed.to_json()),
            ("clients", self.config.clients.to_json()),
            ("requests_per_client", self.config.requests.to_json()),
            ("kmax", self.config.kmax.to_json()),
            ("total_requests", self.total_requests.to_json()),
            ("p50_us", self.p50_us.to_json()),
            ("p99_us", self.p99_us.to_json()),
            ("max_us", self.max_us.to_json()),
            ("throughput_rps", self.throughput_rps.to_json()),
            ("wall_ms", self.wall_ms.to_json()),
            ("verified", Json::Bool(true)),
        ])
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Run a loadtest against an in-process daemon serving `registry`.
///
/// Fails on any transport error or any response that is not
/// bit-identical to the batch answer.
pub fn run_loadtest(
    registry: GraphRegistry,
    cfg: &LoadtestConfig,
) -> Result<LoadtestReport, String> {
    let entry = registry
        .get(&cfg.graph)
        .ok_or_else(|| format!("unknown graph {:?}", cfg.graph))?;
    let ks: Vec<usize> = (0..=cfg.kmax).collect();
    let expected: BTreeMap<usize, (Vec<usize>, u64)> = entry
        .problem
        .solve_ladder(cfg.solver, &ks, cfg.seed)
        .into_iter()
        .map(|(k, placement, fr)| {
            let nodes = placement.nodes().iter().map(|v| v.index()).collect();
            (k, (nodes, fr.to_bits()))
        })
        .collect();

    let server = Server::bind("127.0.0.1:0", ApiState::new(registry, None))?;
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut opener = ServeClient::connect(addr)?;
    let open = opener.call(ServeCall::SessionOpen {
        graph: cfg.graph.clone(),
        solver: cfg.solver,
        seed: cfg.seed,
    })?;
    if open.status != 201 {
        return Err(format!("session open failed: {}", open.body.to_compact()));
    }
    let session = open
        .body
        .expect("session")?
        .as_str()
        .ok_or("session id missing from open reply")?
        .to_string();

    let started = Instant::now();
    let mut workers = Vec::with_capacity(cfg.clients);
    for client_idx in 0..cfg.clients {
        let session = session.clone();
        let expected = expected.clone();
        let requests = cfg.requests;
        let kmax = cfg.kmax;
        workers.push(
            thread::Builder::new()
                .name(format!("fp-loadtest-{client_idx}"))
                .spawn(move || -> Result<Vec<u64>, String> {
                    let mut client = ServeClient::connect(addr)?;
                    let mut latencies = Vec::with_capacity(requests);
                    for i in 0..requests {
                        let k = (client_idx + i) % (kmax + 1);
                        let sent = Instant::now();
                        let reply = client.call(ServeCall::Query {
                            session: session.clone(),
                            ks: vec![k],
                            deadline_ms: None,
                        })?;
                        latencies.push(sent.elapsed().as_micros() as u64);
                        if reply.status != 200 {
                            return Err(format!("query k={k} failed: {}", reply.body.to_compact()));
                        }
                        verify_row(&reply.body, k, &expected)?;
                    }
                    client.hang_up()?;
                    Ok(latencies)
                })
                .map_err(|e| format!("cannot spawn client thread: {e}"))?,
        );
    }

    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.clients * cfg.requests);
    for worker in workers {
        latencies.extend(
            worker
                .join()
                .map_err(|_| "client thread panicked".to_string())??,
        );
    }
    let wall = started.elapsed();
    opener.hang_up()?;
    handle.stop()?;

    latencies.sort_unstable();
    let total = latencies.len();
    Ok(LoadtestReport {
        config: cfg.clone(),
        total_requests: total,
        p50_us: percentile(&latencies, 50.0),
        p99_us: percentile(&latencies, 99.0),
        max_us: latencies.last().copied().unwrap_or(0),
        throughput_rps: total as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
        wall_ms: wall.as_millis() as u64,
    })
}

/// Check one query reply against the batch answer, bit for bit.
fn verify_row(
    body: &Json,
    k: usize,
    expected: &BTreeMap<usize, (Vec<usize>, u64)>,
) -> Result<(), String> {
    let rows = body
        .expect("results")?
        .as_array()
        .ok_or("results must be an array")?;
    let row = rows.first().ok_or("empty results")?;
    let got_k = row.expect("k")?.as_usize().ok_or("bad k in reply")?;
    if got_k != k {
        return Err(format!("asked k={k}, got k={got_k}"));
    }
    let fr = row.expect("fr")?.as_f64().ok_or("bad fr in reply")?;
    let nodes: Vec<usize> = row
        .expect("placement")?
        .as_array()
        .ok_or("bad placement in reply")?
        .iter()
        .map(|v| v.as_usize().ok_or("bad node in placement"))
        .collect::<Result<_, _>>()?;
    let (want_nodes, want_fr) = &expected[&k];
    if fr.to_bits() != *want_fr || &nodes != want_nodes {
        return Err(format!(
            "serve answer diverged from batch at k={k}: \
             fr {fr:?} (bits {:#x}) vs batch bits {want_fr:#x}, \
             placement {nodes:?} vs {want_nodes:?}",
            fr.to_bits()
        ));
    }
    Ok(())
}

/// Set (or replace) the `serve` member of a baseline JSON document.
///
/// Used by `fp loadtest --baseline FILE` to fold measured serve
/// numbers into an existing `BENCH_baseline.json` without disturbing
/// the other sections.
pub fn merge_serve_section(doc: &mut Json, report: &LoadtestReport) {
    let serve = report.to_json();
    if let Json::Object(members) = doc {
        if let Some(slot) = members.iter_mut().find(|(k, _)| k == "serve") {
            slot.1 = serve;
        } else {
            members.push(("serve".to_string(), serve));
        }
    } else {
        *doc = Json::object([("serve", serve)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_registry() -> GraphRegistry {
        let registry = GraphRegistry::new();
        registry
            .put_edge_list(
                "fig1",
                "s",
                "s x\ns y\nx z1\nx z2\ny z2\ny z3\nz1 w\nz2 w\nz3 w\n",
            )
            .unwrap();
        registry
    }

    #[test]
    fn loadtest_measures_and_verifies() {
        let cfg = LoadtestConfig {
            graph: "fig1".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
            clients: 4,
            requests: 10,
            kmax: 3,
        };
        let report = run_loadtest(tiny_registry(), &cfg).unwrap();
        assert_eq!(report.total_requests, 40);
        assert!(report.p50_us <= report.p99_us);
        assert!(report.p99_us <= report.max_us);
        assert!(report.throughput_rps > 0.0);
        let json = report.to_json();
        assert_eq!(json.expect("verified").unwrap(), &Json::Bool(true));
        assert_eq!(json.expect("total_requests").unwrap().as_usize(), Some(40));
    }

    #[test]
    fn unknown_graph_fails_before_binding_a_port() {
        let cfg = LoadtestConfig {
            graph: "missing".into(),
            ..LoadtestConfig::default()
        };
        let err = run_loadtest(GraphRegistry::new(), &cfg).unwrap_err();
        assert!(err.contains("unknown graph"), "{err}");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn merge_replaces_or_appends_the_serve_section() {
        let cfg = LoadtestConfig {
            graph: "fig1".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
            clients: 1,
            requests: 2,
            kmax: 1,
        };
        let report = run_loadtest(tiny_registry(), &cfg).unwrap();
        let mut doc = Json::object([("schema", Json::Str("x/1".into()))]);
        merge_serve_section(&mut doc, &report);
        assert!(doc.expect("serve").is_ok());
        // Merging again replaces rather than duplicates.
        merge_serve_section(&mut doc, &report);
        let Json::Object(members) = &doc else {
            panic!()
        };
        assert_eq!(members.iter().filter(|(k, _)| k == "serve").count(), 1);
    }
}
