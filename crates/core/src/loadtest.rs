//! `fp loadtest`: measure the serve daemon under concurrent traffic.
//!
//! The harness spins an in-process [`Server`] on an ephemeral port,
//! opens one warm session, and drives `clients` concurrent frame
//! connections, each issuing `requests` placement queries with budgets
//! cycling through `0..=kmax` (each client starts at a different
//! offset, so budgets interleave adversarially across clients).
//!
//! Every response is **verified** against a precomputed batch
//! [`Problem::solve_ladder`](crate::Problem::solve_ladder) answer —
//! FR bits and placement nodes must match exactly — so the loadtest
//! doubles as a concurrency determinism check; a single mismatch fails
//! the run.
//!
//! Latency percentiles use the nearest-rank method over all recorded
//! round-trip times; throughput is total requests over wall time. The
//! numbers land in the `serve` section of `BENCH_baseline.json` (see
//! the `fp-bench` crate and `fp loadtest --baseline`).

use crate::registry::GraphRegistry;
use crate::serve::{ApiState, ServeClient, Server};
use fp_algorithms::SolverKind;
use fp_results::protocol::ServeCall;
use fp_results::{Json, ToJson};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// Which transport the loadtest clients drive.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Transport {
    /// Persistent length-prefixed frame connections (the native
    /// protocol; one connection per client for the whole run).
    #[default]
    Frame,
    /// HTTP/1.1, measured twice: a `Connection: close` phase (one
    /// connection per request, the pre-keep-alive behavior) and a
    /// keep-alive phase (one connection per client). Both numbers are
    /// recorded; the report's headline latencies are the keep-alive
    /// phase's.
    Http,
}

impl Transport {
    /// Parse a `--transport` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "frame" => Ok(Self::Frame),
            "http" => Ok(Self::Http),
            other => Err(format!("unknown transport {other:?} (want frame or http)")),
        }
    }
}

/// What to drive and how hard.
#[derive(Clone, Debug)]
pub struct LoadtestConfig {
    /// Registry name of the graph to query (e.g. `"fig1"`,
    /// `"layered-sparse"`).
    pub graph: String,
    /// The solver whose session is driven.
    pub solver: SolverKind,
    /// Session seed.
    pub seed: u64,
    /// Concurrent client connections.
    pub clients: usize,
    /// Queries issued per client.
    pub requests: usize,
    /// Budgets cycle through `0..=kmax`.
    pub kmax: usize,
    /// Which transport the clients speak.
    pub transport: Transport,
    /// Edge insertions driven through `POST /sessions/:id/mutations`
    /// after the query phase (0 = no mutation phase). Each accepted
    /// mutation is followed by a full re-query verified against a
    /// batch solve on a locally mutated copy of the graph.
    pub mutations: usize,
    /// How many times a client re-issues a request answered 408 or 503
    /// before giving up (0 = fail on the first such answer). Backoff
    /// between attempts is exponential with *deterministic* jitter —
    /// seeded by (seed, client, request, attempt) — so two runs of the
    /// same config sleep identically.
    pub retries: u32,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        Self {
            graph: "layered-sparse".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
            clients: 8,
            requests: 50,
            kmax: 8,
            transport: Transport::Frame,
            mutations: 0,
            retries: 0,
        }
    }
}

/// One measured phase: latency percentiles plus throughput.
#[derive(Clone, Copy, Debug)]
pub struct PhaseNumbers {
    /// Median round-trip latency, microseconds (nearest-rank).
    pub p50_us: u64,
    /// 99th-percentile round-trip latency, microseconds (nearest-rank).
    pub p99_us: u64,
    /// Worst observed round-trip, microseconds.
    pub max_us: u64,
    /// Requests per second over the phase.
    pub throughput_rps: f64,
    /// Wall time of the phase, milliseconds.
    pub wall_ms: u64,
}

impl PhaseNumbers {
    fn from_samples(mut latencies: Vec<u64>, wall: Duration) -> Self {
        latencies.sort_unstable();
        Self {
            p50_us: percentile(&latencies, 50.0),
            p99_us: percentile(&latencies, 99.0),
            max_us: latencies.last().copied().unwrap_or(0),
            throughput_rps: latencies.len() as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
            wall_ms: wall.as_millis() as u64,
        }
    }

    fn to_json(self) -> Json {
        Json::object([
            ("p50_us", self.p50_us.to_json()),
            ("p99_us", self.p99_us.to_json()),
            ("max_us", self.max_us.to_json()),
            ("throughput_rps", self.throughput_rps.to_json()),
            ("wall_ms", self.wall_ms.to_json()),
        ])
    }
}

/// The two HTTP phases' numbers, recorded side by side so the cost of
/// per-request reconnects is visible in one report.
#[derive(Clone, Copy, Debug)]
pub struct HttpNumbers {
    /// `Connection: close` — one TCP connection per request.
    pub close: PhaseNumbers,
    /// `Connection: keep-alive` — one connection per client.
    pub keep_alive: PhaseNumbers,
}

/// The measured result of one loadtest run.
#[derive(Clone, Debug)]
pub struct LoadtestReport {
    /// The driven configuration.
    pub config: LoadtestConfig,
    /// Total requests answered (`clients × requests` per phase).
    pub total_requests: usize,
    /// Median round-trip latency, microseconds (nearest-rank).
    pub p50_us: u64,
    /// 99th-percentile round-trip latency, microseconds (nearest-rank).
    pub p99_us: u64,
    /// Worst observed round-trip, microseconds.
    pub max_us: u64,
    /// Requests per second over the whole run.
    pub throughput_rps: f64,
    /// Wall time of the client phase, milliseconds.
    pub wall_ms: u64,
    /// Both HTTP phases when `transport` was [`Transport::Http`].
    pub http: Option<HttpNumbers>,
    /// The mutation phase's numbers when `mutations > 0`: latency is
    /// the mutate round-trip alone (re-query verification excluded).
    pub mutation: Option<PhaseNumbers>,
    /// Mutations actually applied (less than requested only when the
    /// graph runs out of absent forward edges to insert).
    pub mutations_applied: usize,
    /// Total 408/503 retries clients performed across all phases
    /// (always 0 unless `--retries` is set and the daemon sheds load).
    pub retries_total: u64,
}

impl LoadtestReport {
    /// The `serve` section recorded in `BENCH_baseline.json`.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("graph".to_string(), self.config.graph.to_json()),
            ("solver".to_string(), self.config.solver.to_json()),
            ("seed".to_string(), self.config.seed.to_json()),
            ("clients".to_string(), self.config.clients.to_json()),
            (
                "requests_per_client".to_string(),
                self.config.requests.to_json(),
            ),
            ("kmax".to_string(), self.config.kmax.to_json()),
            ("total_requests".to_string(), self.total_requests.to_json()),
            ("p50_us".to_string(), self.p50_us.to_json()),
            ("p99_us".to_string(), self.p99_us.to_json()),
            ("max_us".to_string(), self.max_us.to_json()),
            ("throughput_rps".to_string(), self.throughput_rps.to_json()),
            ("wall_ms".to_string(), self.wall_ms.to_json()),
            ("retries".to_string(), self.retries_total.to_json()),
            ("verified".to_string(), Json::Bool(true)),
        ];
        if let Some(http) = &self.http {
            members.push((
                "http".to_string(),
                Json::object([
                    ("close", http.close.to_json()),
                    ("keep_alive", http.keep_alive.to_json()),
                ]),
            ));
        }
        if let Some(mutation) = &self.mutation {
            let mut section = mutation.to_json();
            if let Json::Object(fields) = &mut section {
                fields.push(("applied".to_string(), self.mutations_applied.to_json()));
            }
            members.push(("mutations".to_string(), section));
        }
        Json::Object(members)
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Run a loadtest against an in-process daemon serving `registry`.
///
/// Fails on any transport error or any response that is not
/// bit-identical to the batch answer.
pub fn run_loadtest(
    registry: GraphRegistry,
    cfg: &LoadtestConfig,
) -> Result<LoadtestReport, String> {
    let entry = registry
        .get(&cfg.graph)
        .ok_or_else(|| format!("unknown graph {:?}", cfg.graph))?;
    let ks: Vec<usize> = (0..=cfg.kmax).collect();
    let expected: BTreeMap<usize, (Vec<usize>, u64)> = entry
        .problem
        .solve_ladder(cfg.solver, &ks, cfg.seed)
        .into_iter()
        .map(|(k, placement, fr)| {
            let nodes = placement.nodes().iter().map(|v| v.index()).collect();
            (k, (nodes, fr.to_bits()))
        })
        .collect();

    let server = Server::bind("127.0.0.1:0", ApiState::new(registry, None))?;
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut opener = ServeClient::connect(addr)?;
    let open = opener.call(ServeCall::SessionOpen {
        graph: cfg.graph.clone(),
        solver: cfg.solver,
        seed: cfg.seed,
    })?;
    if open.status != 201 {
        return Err(format!("session open failed: {}", open.body.to_compact()));
    }
    let session = open
        .body
        .expect("session")?
        .as_str()
        .ok_or("session id missing from open reply")?
        .to_string();

    let (headline, total, http, retries_total) = match cfg.transport {
        Transport::Frame => {
            let (latencies, retries, wall) = drive_frame_clients(addr, &session, cfg, &expected)?;
            let total = latencies.len();
            (
                PhaseNumbers::from_samples(latencies, wall),
                total,
                None,
                retries,
            )
        }
        Transport::Http => {
            let (close_lat, close_retries, close_wall) =
                drive_http_clients(addr, &session, cfg, &expected, false)?;
            let (ka_lat, ka_retries, ka_wall) =
                drive_http_clients(addr, &session, cfg, &expected, true)?;
            let total = ka_lat.len();
            let close = PhaseNumbers::from_samples(close_lat, close_wall);
            let keep_alive = PhaseNumbers::from_samples(ka_lat, ka_wall);
            (
                keep_alive,
                total,
                Some(HttpNumbers { close, keep_alive }),
                close_retries + ka_retries,
            )
        }
    };
    let (mutation, mutations_applied) = if cfg.mutations > 0 {
        let (numbers, applied) = drive_mutation_phase(addr, &session, cfg, &entry)?;
        (Some(numbers), applied)
    } else {
        (None, 0)
    };

    opener.hang_up()?;
    handle.stop()?;

    Ok(LoadtestReport {
        config: cfg.clone(),
        total_requests: total,
        p50_us: headline.p50_us,
        p99_us: headline.p99_us,
        max_us: headline.max_us,
        throughput_rps: headline.throughput_rps,
        wall_ms: headline.wall_ms,
        http,
        mutation,
        mutations_applied,
        retries_total,
    })
}

/// Deterministic jittered backoff before retry `attempt` (1-based) of
/// one request: 4ms · 2^(attempt-1), capped at 100ms, scaled by a
/// jitter factor in [0.5, 1.5) hashed from (seed, client, request,
/// attempt). Seeded, so a rerun of the same config sleeps the same —
/// "jittered" here spreads *clients* apart, not runs.
pub fn retry_backoff(seed: u64, client: usize, request: usize, attempt: u32) -> Duration {
    let base_ms = 4u64.saturating_mul(1 << (attempt.saturating_sub(1)).min(5));
    let mut h = fp_results::hash::Fnv64::new();
    h.update_u64(seed)
        .update_u64(client as u64)
        .update_u64(request as u64)
        .update_u64(u64::from(attempt));
    let jitter = 0.5 + (h.finish() % 1000) as f64 / 1000.0;
    Duration::from_micros((base_ms.min(100) as f64 * 1000.0 * jitter) as u64)
}

/// The live-graph phase: drive edge insertions through the session and
/// verify the rebuilt session answers against a batch solve on a
/// locally mutated copy of the graph after every mutation.
///
/// Insert-only on purpose: insertions can never orphan a placed filter
/// (the only 409 the mutation API raises for a structurally legal
/// edit), so a conflict here is a hard failure rather than an expected
/// outcome, and the phase stays deterministic. Candidate edges are
/// absent forward pairs in the original topological order, walked in a
/// fixed order, so acyclicity is preserved by construction and two
/// runs drive identical traffic.
fn drive_mutation_phase(
    addr: SocketAddr,
    session: &str,
    cfg: &LoadtestConfig,
    entry: &crate::registry::GraphEntry,
) -> Result<(PhaseNumbers, usize), String> {
    let mut local = entry.problem.cgraph().clone();
    let topo: Vec<_> = local.topo().to_vec();
    let mut client = ServeClient::connect(addr)?;
    let mut latencies = Vec::with_capacity(cfg.mutations);
    let started = Instant::now();
    let mut applied = 0;
    'outer: for gap in 1..topo.len() {
        for i in 0..topo.len() - gap {
            if applied == cfg.mutations {
                break 'outer;
            }
            let (u, v) = (topo[i], topo[i + gap]);
            if local.csr().children(u).contains(&v) {
                continue;
            }
            let sent = Instant::now();
            let reply = client.call(ServeCall::Mutate {
                session: session.to_string(),
                mutation: "insert_edge".into(),
                from: entry.labels[u.index()].clone(),
                to: entry.labels[v.index()].clone(),
            })?;
            latencies.push(sent.elapsed().as_micros() as u64);
            if reply.status != 200 {
                return Err(format!(
                    "mutation {u:?} -> {v:?} failed: {}",
                    reply.body.to_compact()
                ));
            }
            local
                .insert_edge(u, v)
                .map_err(|e| format!("local mirror rejected {u:?} -> {v:?}: {e:?}"))?;
            if reply.body.expect("edges")?.as_usize() != Some(local.edge_count()) {
                return Err(format!(
                    "edge count diverged after {u:?} -> {v:?}: {}",
                    reply.body.to_compact()
                ));
            }
            applied += 1;

            // Re-query the whole ladder and hold it to the batch
            // answer on the mutated graph, bit for bit.
            let ks: Vec<usize> = (0..=cfg.kmax).collect();
            let expected: BTreeMap<usize, (Vec<usize>, u64)> =
                crate::Problem::from_cgraph(local.clone())
                    .solve_ladder(cfg.solver, &ks, cfg.seed)
                    .into_iter()
                    .map(|(k, placement, fr)| {
                        let nodes = placement.nodes().iter().map(|n| n.index()).collect();
                        (k, (nodes, fr.to_bits()))
                    })
                    .collect();
            let reply = client.call(ServeCall::Query {
                session: session.to_string(),
                ks: vec![cfg.kmax],
                deadline_ms: None,
            })?;
            if reply.status != 200 {
                return Err(format!(
                    "post-mutation query failed: {}",
                    reply.body.to_compact()
                ));
            }
            verify_row(&reply.body, cfg.kmax, &expected)?;
        }
    }
    client.hang_up()?;
    Ok((
        PhaseNumbers::from_samples(latencies, started.elapsed()),
        applied,
    ))
}

/// Fan the workload out over `cfg.clients` threads, collect every
/// per-request latency plus each client's retry count, and report the
/// phase's wall time.
fn drive_clients<W>(cfg: &LoadtestConfig, worker: W) -> Result<(Vec<u64>, u64, Duration), String>
where
    W: Fn(usize) -> Result<(Vec<u64>, u64), String> + Clone + Send + 'static,
{
    let started = Instant::now();
    let mut workers = Vec::with_capacity(cfg.clients);
    for client_idx in 0..cfg.clients {
        let worker = worker.clone();
        workers.push(
            thread::Builder::new()
                .name(format!("fp-loadtest-{client_idx}"))
                .spawn(move || worker(client_idx))
                .map_err(|e| format!("cannot spawn client thread: {e}"))?,
        );
    }
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.clients * cfg.requests);
    let mut retries = 0u64;
    for worker in workers {
        let (lat, r) = worker
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        latencies.extend(lat);
        retries += r;
    }
    Ok((latencies, retries, started.elapsed()))
}

/// One frame connection per client for the whole phase. A 408/503
/// answer is retried up to `cfg.retries` times with seeded backoff
/// ([`retry_backoff`]); the recorded latency covers the whole request
/// including its retries, which is what a caller experiences.
fn drive_frame_clients(
    addr: SocketAddr,
    session: &str,
    cfg: &LoadtestConfig,
    expected: &BTreeMap<usize, (Vec<usize>, u64)>,
) -> Result<(Vec<u64>, u64, Duration), String> {
    let session = session.to_string();
    let expected = expected.clone();
    let requests = cfg.requests;
    let kmax = cfg.kmax;
    let max_retries = cfg.retries;
    let seed = cfg.seed;
    drive_clients(cfg, move |client_idx| {
        let mut client = ServeClient::connect(addr)?;
        let mut latencies = Vec::with_capacity(requests);
        let mut retries = 0u64;
        for i in 0..requests {
            let k = (client_idx + i) % (kmax + 1);
            let sent = Instant::now();
            let mut attempt = 0u32;
            let reply = loop {
                let reply = client.call(ServeCall::Query {
                    session: session.clone(),
                    ks: vec![k],
                    deadline_ms: None,
                })?;
                if !matches!(reply.status, 408 | 503) {
                    break reply;
                }
                attempt += 1;
                if attempt > max_retries {
                    return Err(format!(
                        "query k={k} still {} after {max_retries} retr{}: {}",
                        reply.status,
                        if max_retries == 1 { "y" } else { "ies" },
                        reply.body.to_compact()
                    ));
                }
                retries += 1;
                thread::sleep(retry_backoff(seed, client_idx, i, attempt));
            };
            latencies.push(sent.elapsed().as_micros() as u64);
            if reply.status != 200 {
                return Err(format!("query k={k} failed: {}", reply.body.to_compact()));
            }
            verify_row(&reply.body, k, &expected)?;
        }
        client.hang_up()?;
        Ok((latencies, retries))
    })
}

/// HTTP clients. With `keep_alive` each client reuses one connection
/// for the whole phase; without it every request pays connect + close
/// — exactly what the daemon did before it honored keep-alive.
fn drive_http_clients(
    addr: SocketAddr,
    session: &str,
    cfg: &LoadtestConfig,
    expected: &BTreeMap<usize, (Vec<usize>, u64)>,
    keep_alive: bool,
) -> Result<(Vec<u64>, u64, Duration), String> {
    let session = session.to_string();
    let expected = expected.clone();
    let requests = cfg.requests;
    let kmax = cfg.kmax;
    let max_retries = cfg.retries;
    let seed = cfg.seed;
    drive_clients(cfg, move |client_idx| {
        let mut conn: Option<(BufReader<TcpStream>, TcpStream)> = None;
        let mut latencies = Vec::with_capacity(requests);
        let mut retries = 0u64;
        for i in 0..requests {
            let k = (client_idx + i) % (kmax + 1);
            let sent = Instant::now();
            let mut attempt = 0u32;
            let (status, body) = loop {
                if conn.is_none() {
                    let stream =
                        TcpStream::connect(addr).map_err(|e| format!("cannot connect: {e}"))?;
                    // Without this, Nagle queues each small request behind
                    // the peer's delayed ACK and keep-alive connections eat
                    // a ~40 ms stall per round-trip.
                    let _ = stream.set_nodelay(true);
                    let reader = BufReader::new(
                        stream
                            .try_clone()
                            .map_err(|e| format!("cannot clone stream: {e}"))?,
                    );
                    conn = Some((reader, stream));
                }
                let (reader, writer) = conn.as_mut().expect("connection just ensured");
                let connection = if keep_alive { "keep-alive" } else { "close" };
                // One write_all, not write!(stream, ...): the format macro
                // would issue one syscall per fragment on a raw stream, and
                // a multi-segment request is exactly what trips Nagle.
                let request = format!(
                    "GET /sessions/{session}/placement?k={k} HTTP/1.1\r\n\
                     Host: loadtest\r\nConnection: {connection}\r\n\r\n"
                );
                writer
                    .write_all(request.as_bytes())
                    .and_then(|()| writer.flush())
                    .map_err(|e| format!("cannot write request: {e}"))?;
                let (status, body) = read_http_reply(reader)?;
                if !keep_alive {
                    conn = None;
                }
                if !matches!(status, 408 | 503) {
                    break (status, body);
                }
                attempt += 1;
                if attempt > max_retries {
                    return Err(format!(
                        "query k={k} still {status} after {max_retries} retr{} over http: {body}",
                        if max_retries == 1 { "y" } else { "ies" },
                    ));
                }
                retries += 1;
                thread::sleep(retry_backoff(seed, client_idx, i, attempt));
            };
            latencies.push(sent.elapsed().as_micros() as u64);
            if status != 200 {
                return Err(format!("query k={k} failed over http: {body}"));
            }
            let body = Json::parse(&body).map_err(|e| format!("bad reply body: {e:?}"))?;
            verify_row(&body, k, &expected)?;
        }
        Ok((latencies, retries))
    })
}

/// Read one HTTP response: status line, headers, `Content-Length`
/// body bytes.
fn read_http_reply(reader: &mut BufReader<TcpStream>) -> Result<(u16, String), String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("cannot read status line: {e}"))?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {line:?}"))?;
    let mut content_len = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("cannot read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_len = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {value:?}"))?;
            }
        }
    }
    let mut body = vec![0u8; content_len];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("truncated reply body: {e}"))?;
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|_| "reply body is not UTF-8".to_string())
}

/// Default relative tolerance for `fp loadtest --check`: latencies may
/// grow and throughput may shrink by up to 50% before the check fails.
/// Generous on purpose — shared CI machines are noisy; the gate is for
/// order-of-magnitude regressions, not single-digit drift.
pub const DEFAULT_CHECK_TOLERANCE: f64 = 0.5;

/// The verdict of comparing a fresh report against a recorded baseline.
#[derive(Clone, Debug)]
pub struct BaselineCheck {
    /// One human-readable line per compared metric.
    pub lines: Vec<String>,
    /// Whether any metric regressed beyond the tolerance.
    pub regressed: bool,
}

/// Compare `report` against the `serve` section of a baseline document
/// (the shape `fp loadtest --baseline` writes into
/// `BENCH_baseline.json`). Within `tolerance` (relative), p50/p99 may
/// grow and throughput may shrink; anything worse is a regression.
pub fn check_against_baseline(
    report: &LoadtestReport,
    baseline: &Json,
    tolerance: f64,
) -> Result<BaselineCheck, String> {
    let serve = baseline
        .get("serve")
        .ok_or("baseline has no serve section (run fp loadtest --baseline first)")?;
    let base_u64 = |key: &str| -> Result<u64, String> {
        serve
            .expect(key)?
            .as_u64()
            .ok_or_else(|| format!("bad {key} in baseline serve section"))
    };
    let base_rps = serve
        .expect("throughput_rps")?
        .as_f64()
        .ok_or("bad throughput_rps in baseline serve section")?;

    let mut lines = Vec::new();
    let mut regressed = false;
    let mut check_latency = |name: &str, fresh: u64, base: u64| {
        let limit = (base as f64 * (1.0 + tolerance)).ceil() as u64;
        let ok = fresh <= limit;
        regressed |= !ok;
        lines.push(format!(
            "{name}: fresh {fresh} us vs baseline {base} us (limit {limit} us) .. {}",
            if ok { "ok" } else { "REGRESSED" }
        ));
    };
    check_latency("p50_us", report.p50_us, base_u64("p50_us")?);
    check_latency("p99_us", report.p99_us, base_u64("p99_us")?);
    let floor = base_rps * (1.0 - tolerance);
    let ok = report.throughput_rps >= floor;
    regressed |= !ok;
    lines.push(format!(
        "throughput_rps: fresh {:.1} vs baseline {base_rps:.1} (floor {floor:.1}) .. {}",
        report.throughput_rps,
        if ok { "ok" } else { "REGRESSED" }
    ));
    Ok(BaselineCheck { lines, regressed })
}

/// Check one query reply against the batch answer, bit for bit.
fn verify_row(
    body: &Json,
    k: usize,
    expected: &BTreeMap<usize, (Vec<usize>, u64)>,
) -> Result<(), String> {
    let rows = body
        .expect("results")?
        .as_array()
        .ok_or("results must be an array")?;
    let row = rows.first().ok_or("empty results")?;
    let got_k = row.expect("k")?.as_usize().ok_or("bad k in reply")?;
    if got_k != k {
        return Err(format!("asked k={k}, got k={got_k}"));
    }
    let fr = row.expect("fr")?.as_f64().ok_or("bad fr in reply")?;
    let nodes: Vec<usize> = row
        .expect("placement")?
        .as_array()
        .ok_or("bad placement in reply")?
        .iter()
        .map(|v| v.as_usize().ok_or("bad node in placement"))
        .collect::<Result<_, _>>()?;
    let (want_nodes, want_fr) = &expected[&k];
    if fr.to_bits() != *want_fr || &nodes != want_nodes {
        return Err(format!(
            "serve answer diverged from batch at k={k}: \
             fr {fr:?} (bits {:#x}) vs batch bits {want_fr:#x}, \
             placement {nodes:?} vs {want_nodes:?}",
            fr.to_bits()
        ));
    }
    Ok(())
}

/// Set (or replace) the `serve` member of a baseline JSON document.
///
/// Used by `fp loadtest --baseline FILE` to fold measured serve
/// numbers into an existing `BENCH_baseline.json` without disturbing
/// the other sections.
pub fn merge_serve_section(doc: &mut Json, report: &LoadtestReport) {
    let serve = report.to_json();
    if let Json::Object(members) = doc {
        if let Some(slot) = members.iter_mut().find(|(k, _)| k == "serve") {
            slot.1 = serve;
        } else {
            members.push(("serve".to_string(), serve));
        }
    } else {
        *doc = Json::object([("serve", serve)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_registry() -> GraphRegistry {
        let registry = GraphRegistry::new();
        registry
            .put_edge_list(
                "fig1",
                "s",
                "s x\ns y\nx z1\nx z2\ny z2\ny z3\nz1 w\nz2 w\nz3 w\n",
            )
            .unwrap();
        registry
    }

    #[test]
    fn loadtest_measures_and_verifies() {
        let cfg = LoadtestConfig {
            graph: "fig1".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
            clients: 4,
            requests: 10,
            kmax: 3,
            transport: Transport::Frame,
            mutations: 0,
            retries: 0,
        };
        let report = run_loadtest(tiny_registry(), &cfg).unwrap();
        assert_eq!(report.total_requests, 40);
        assert!(report.p50_us <= report.p99_us);
        assert!(report.p99_us <= report.max_us);
        assert!(report.throughput_rps > 0.0);
        assert!(report.http.is_none(), "frame runs record no http section");
        let json = report.to_json();
        assert_eq!(json.expect("verified").unwrap(), &Json::Bool(true));
        assert_eq!(json.expect("total_requests").unwrap().as_usize(), Some(40));
        assert!(json.get("http").is_none());
    }

    #[test]
    fn http_transport_measures_close_and_keepalive_phases() {
        let cfg = LoadtestConfig {
            graph: "fig1".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
            clients: 2,
            requests: 5,
            kmax: 2,
            transport: Transport::Http,
            mutations: 0,
            retries: 0,
        };
        let report = run_loadtest(tiny_registry(), &cfg).unwrap();
        assert_eq!(report.total_requests, 10, "per phase");
        let http = report.http.expect("http section recorded");
        assert!(http.close.throughput_rps > 0.0);
        assert!(http.keep_alive.throughput_rps > 0.0);
        // Headline numbers are the keep-alive phase's.
        assert_eq!(report.p50_us, http.keep_alive.p50_us);
        let json = report.to_json();
        let section = json.expect("http").unwrap();
        assert!(section.expect("close").unwrap().get("p50_us").is_some());
        assert!(section
            .expect("keep_alive")
            .unwrap()
            .get("p99_us")
            .is_some());
    }

    #[test]
    fn mutation_phase_applies_inserts_and_verifies_rebuilds() {
        let cfg = LoadtestConfig {
            graph: "fig1".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
            clients: 2,
            requests: 4,
            kmax: 3,
            transport: Transport::Frame,
            mutations: 3,
            retries: 0,
        };
        let report = run_loadtest(tiny_registry(), &cfg).unwrap();
        assert_eq!(report.mutations_applied, 3);
        let phase = report.mutation.expect("mutation phase recorded");
        assert!(phase.p50_us <= phase.max_us);
        let json = report.to_json();
        let section = json.expect("mutations").unwrap();
        assert_eq!(section.expect("applied").unwrap().as_usize(), Some(3));
        assert!(section.get("p99_us").is_some());
    }

    #[test]
    fn transport_parses_and_rejects() {
        assert_eq!(Transport::parse("frame").unwrap(), Transport::Frame);
        assert_eq!(Transport::parse("http").unwrap(), Transport::Http);
        assert!(Transport::parse("carrier-pigeon").is_err());
    }

    fn report_with(p50: u64, p99: u64, rps: f64) -> LoadtestReport {
        LoadtestReport {
            config: LoadtestConfig::default(),
            total_requests: 100,
            p50_us: p50,
            p99_us: p99,
            max_us: p99 * 2,
            throughput_rps: rps,
            wall_ms: 10,
            http: None,
            mutation: None,
            mutations_applied: 0,
            retries_total: 0,
        }
    }

    fn baseline_doc(p50: u64, p99: u64, rps: f64) -> Json {
        Json::object([(
            "serve",
            Json::object([
                ("p50_us", p50.to_json()),
                ("p99_us", p99.to_json()),
                ("throughput_rps", rps.to_json()),
            ]),
        )])
    }

    #[test]
    fn baseline_check_passes_within_tolerance() {
        let report = report_with(120, 900, 900.0);
        let check = check_against_baseline(&report, &baseline_doc(100, 800, 1000.0), 0.5).unwrap();
        assert!(!check.regressed, "{:?}", check.lines);
        assert_eq!(check.lines.len(), 3);
        assert!(check.lines.iter().all(|l| l.ends_with("ok")));
    }

    #[test]
    fn baseline_check_flags_each_regression() {
        let base = baseline_doc(100, 800, 1000.0);
        for (p50, p99, rps) in [(151, 800, 1000.0), (100, 1201, 1000.0), (100, 800, 499.0)] {
            let check = check_against_baseline(&report_with(p50, p99, rps), &base, 0.5).unwrap();
            assert!(check.regressed, "{p50} {p99} {rps}");
            assert_eq!(
                check
                    .lines
                    .iter()
                    .filter(|l| l.ends_with("REGRESSED"))
                    .count(),
                1
            );
        }
    }

    #[test]
    fn baseline_check_requires_a_serve_section() {
        let report = report_with(1, 1, 1.0);
        let err = check_against_baseline(&report, &Json::object([]), 0.5).unwrap_err();
        assert!(err.contains("no serve section"), "{err}");
    }

    #[test]
    fn unknown_graph_fails_before_binding_a_port() {
        let cfg = LoadtestConfig {
            graph: "missing".into(),
            ..LoadtestConfig::default()
        };
        let err = run_loadtest(GraphRegistry::new(), &cfg).unwrap_err();
        assert!(err.contains("unknown graph"), "{err}");
    }

    #[test]
    fn retry_backoff_is_deterministic_jittered_and_capped() {
        // Same inputs, same sleep — reruns are byte-reproducible.
        assert_eq!(retry_backoff(7, 3, 11, 2), retry_backoff(7, 3, 11, 2));
        // Different clients jitter apart.
        assert_ne!(retry_backoff(7, 3, 11, 2), retry_backoff(7, 4, 11, 2));
        for attempt in 1..=12 {
            let d = retry_backoff(0, 0, 0, attempt);
            let base = 4u64.saturating_mul(1 << (attempt - 1).min(5)).min(100);
            let lo = Duration::from_micros(base * 500);
            let hi = Duration::from_micros(base * 1500);
            assert!(
                d >= lo && d < hi,
                "attempt {attempt}: {d:?} not in [{lo:?}, {hi:?})"
            );
        }
        // The cap: attempt 6 and beyond sleep the same base (100ms max
        // before jitter).
        assert!(retry_backoff(0, 0, 0, 40) < Duration::from_millis(150));
    }

    #[test]
    fn a_healthy_daemon_needs_no_retries_but_reports_the_count() {
        let cfg = LoadtestConfig {
            graph: "fig1".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
            clients: 2,
            requests: 4,
            kmax: 2,
            transport: Transport::Frame,
            mutations: 0,
            retries: 3,
        };
        let report = run_loadtest(tiny_registry(), &cfg).unwrap();
        assert_eq!(report.retries_total, 0, "nothing to retry against");
        let json = report.to_json();
        assert_eq!(json.expect("retries").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn merge_replaces_or_appends_the_serve_section() {
        let cfg = LoadtestConfig {
            graph: "fig1".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
            clients: 1,
            requests: 2,
            kmax: 1,
            transport: Transport::Frame,
            mutations: 0,
            retries: 0,
        };
        let report = run_loadtest(tiny_registry(), &cfg).unwrap();
        let mut doc = Json::object([("schema", Json::Str("x/1".into()))]);
        merge_serve_section(&mut doc, &report);
        assert!(doc.expect("serve").is_ok());
        // Merging again replaces rather than duplicates.
        merge_serve_section(&mut doc, &report);
        let Json::Object(members) = &doc else {
            panic!()
        };
        assert_eq!(members.iter().filter(|(k, _)| k == "serve").count(), 1);
    }
}
