//! The serve-side **graph registry**: load each graph once, key it by
//! structural fingerprint, and hand out cheap shared handles.
//!
//! `fp serve` answers placement queries in milliseconds precisely
//! because the expensive part — parsing an edge list, collapsing it to
//! a c-graph, building a [`Problem`] — happens once per graph, at
//! registration time. Everything after that is an
//! [`Arc<GraphEntry>`](GraphEntry) clone.
//!
//! Two ways in:
//!
//! * **Built-ins** ([`GraphRegistry::with_builtins`]): the paper's
//!   Figure-1 network plus the synthetic stand-ins used throughout the
//!   repro (`layered-sparse`, `layered-dense`, `quote`), all generated
//!   with the fixed seed 2012 so every daemon instance registers
//!   byte-identical graphs.
//! * **Uploads** ([`GraphRegistry::put_edge_list`]): the same
//!   whitespace edge-list format `fp solve --input` reads. Uploads are
//!   idempotent on identical content and a *conflict* (HTTP 409 in the
//!   serve layer) when a name is re-used for different content — a
//!   registry never silently swaps a graph out from under the warm
//!   sessions that reference it.
//!
//! The fingerprint is [`DatasetFingerprint`]: FNV-1a over node count,
//! source index, and every edge in storage order — the same identity
//! the run store keys its cache on, so a serve answer and a stored
//! sweep can be audited against each other.

use crate::Problem;
use fp_graph::{from_edge_list, DiGraph, NodeId};
use fp_results::DatasetFingerprint;
use fp_scale::{graph_estimate, MemBudget};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One registered graph: the placement problem plus enough identity to
/// audit what is being solved.
///
/// Entries are immutable once registered and shared by `Arc`; a warm
/// session holds one for its whole lifetime, so a registry conflict can
/// never change the bits under a running solve.
pub struct GraphEntry {
    /// Registry key ("fig1", "quote", an upload name, ...).
    pub name: String,
    /// Node labels, indexed by [`NodeId::index`]. Built-ins label
    /// nodes by index (`"0"`, `"1"`, ...) except `fig1`, which uses
    /// the paper's names (`s`, `x`, `y`, `z1`, `z2`, `z3`, `w`).
    pub labels: Vec<String>,
    /// Structural identity: node/edge counts, source label, edge hash.
    pub fingerprint: DatasetFingerprint,
    /// The ready-to-solve placement problem (source already bound).
    pub problem: Problem,
}

impl std::fmt::Debug for GraphEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphEntry")
            .field("name", &self.name)
            .field("fingerprint", &self.fingerprint)
            .finish_non_exhaustive()
    }
}

impl GraphEntry {
    /// The display label of a node, falling back to its index if the
    /// graph somehow grew past its label table (it cannot — both come
    /// from the same parse — but a panic in a server is worse than a
    /// number).
    pub fn node_label(&self, id: NodeId) -> String {
        self.labels
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| id.index().to_string())
    }

    fn from_parts(
        name: &str,
        g: &DiGraph,
        labels: Vec<String>,
        source: NodeId,
    ) -> Result<Self, String> {
        let fingerprint = DatasetFingerprint::of_graph(name, g, source, &labels[source.index()]);
        let problem = Problem::new(g, source).map_err(|e| e.to_string())?;
        Ok(Self {
            name: name.to_string(),
            labels,
            fingerprint,
            problem,
        })
    }
}

/// What [`GraphRegistry::put_edge_list`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PutOutcome {
    /// The name was free; the graph is now registered.
    Created,
    /// The name was already bound to *identical* content; the existing
    /// entry was kept (uploads are idempotent).
    AlreadyPresent,
}

/// Why [`GraphRegistry::put_edge_list`] refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PutError {
    /// The name is bound to *different* content. The serve layer maps
    /// this to HTTP 409; the caller must pick a new name (or close the
    /// sessions and restart the daemon — entries are immutable).
    Conflict {
        /// The contested registry key.
        name: String,
        /// Edge hash of the entry already registered.
        existing: String,
        /// Edge hash of the rejected upload.
        incoming: String,
    },
    /// The upload itself is unusable: unparseable edge list, a source
    /// label that never appears, or a graph [`Problem::new`] rejects.
    /// The serve layer maps this to HTTP 400.
    Invalid(String),
    /// Registering the graph would push the daemon's tracked graph
    /// bytes past its `--mem-budget` cap. The registry is unchanged;
    /// the serve layer maps this to HTTP 503.
    OverBudget(String),
}

impl std::fmt::Display for PutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PutError::Conflict {
                name,
                existing,
                incoming,
            } => write!(
                f,
                "graph {name:?} already registered with different content \
                 (edge hash {existing} vs {incoming})"
            ),
            PutError::Invalid(msg) => write!(f, "bad graph upload: {msg}"),
            PutError::OverBudget(msg) => write!(f, "graph upload over memory budget: {msg}"),
        }
    }
}

/// A thread-safe, name-keyed table of [`GraphEntry`]s.
///
/// All methods take `&self`; the registry is meant to sit in an `Arc`
/// shared by every connection handler of the daemon.
///
/// ```
/// use fp_core::registry::{GraphRegistry, PutOutcome};
///
/// let reg = GraphRegistry::new();
/// let (outcome, entry) = reg
///     .put_edge_list("diamond", "s", "s a\ns b\na t\nb t\n")
///     .unwrap();
/// assert_eq!(outcome, PutOutcome::Created);
/// assert_eq!(entry.fingerprint.nodes, 4);
///
/// // Same name, same bytes: idempotent.
/// let (again, _) = reg
///     .put_edge_list("diamond", "s", "s a\ns b\na t\nb t\n")
///     .unwrap();
/// assert_eq!(again, PutOutcome::AlreadyPresent);
///
/// // Same name, different content: conflict, original kept.
/// assert!(reg.put_edge_list("diamond", "s", "s t\n").is_err());
/// assert_eq!(reg.get("diamond").unwrap().fingerprint.nodes, 4);
/// ```
pub struct GraphRegistry {
    graphs: Mutex<BTreeMap<String, Arc<GraphEntry>>>,
    budget: MemBudget,
}

impl Default for GraphRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for GraphRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphRegistry")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl GraphRegistry {
    /// An empty registry (no built-ins), accounting uploads against
    /// the process-wide [`fp_scale::global_budget`] — `fp serve
    /// --mem-budget` caps it.
    pub fn new() -> Self {
        Self::with_budget(fp_scale::global_budget())
    }

    /// An empty registry accounting uploads against `budget`.
    ///
    /// Each accepted upload reserves its coarse CSR footprint
    /// ([`graph_estimate`]) for as long as the entry lives (entries are
    /// immutable and never evicted, so that is the daemon's lifetime);
    /// an upload that would cross the cap is refused with
    /// [`PutError::OverBudget`] and changes nothing. Built-ins are
    /// fixed-size and not accounted.
    pub fn with_budget(budget: MemBudget) -> Self {
        Self {
            graphs: Mutex::new(BTreeMap::new()),
            budget,
        }
    }

    /// A registry pre-loaded with the repro's standard graphs, all
    /// deterministic (generator seed 2012):
    ///
    /// | name | nodes | source | provenance |
    /// |---|---|---|---|
    /// | `fig1` | 7 | `s` | the paper's Figure-1 news network |
    /// | `layered-sparse` | 1001 | `0` | §6.1 layered DAG, sparse |
    /// | `layered-dense` | 1001 | `0` | §6.1 layered DAG, dense |
    /// | `quote` | 932 | `0` | quote-trace stand-in |
    pub fn with_builtins() -> Self {
        let reg = Self::new();
        let fig1 = DiGraph::from_pairs(
            7,
            [
                (0, 1),
                (0, 2),
                (1, 3),
                (1, 4),
                (2, 4),
                (2, 5),
                (3, 6),
                (4, 6),
                (5, 6),
            ],
        )
        .expect("fig1 is well-formed");
        let fig1_labels = ["s", "x", "y", "z1", "z2", "z3", "w"]
            .map(String::from)
            .to_vec();
        reg.insert_built_in("fig1", &fig1, fig1_labels, NodeId::new(0));

        const SEED: u64 = 2012;
        let sparse = fp_datasets::layered::generate(
            &fp_datasets::layered::LayeredParams::paper_sparse(SEED),
        );
        reg.insert_built_in(
            "layered-sparse",
            &sparse.graph,
            index_labels(sparse.graph.node_count()),
            sparse.source,
        );
        let dense =
            fp_datasets::layered::generate(&fp_datasets::layered::LayeredParams::paper_dense(SEED));
        reg.insert_built_in(
            "layered-dense",
            &dense.graph,
            index_labels(dense.graph.node_count()),
            dense.source,
        );
        let quote = fp_datasets::quote_like::generate(&fp_datasets::quote_like::QuoteLikeParams {
            nodes: 932,
            seed: SEED,
        });
        reg.insert_built_in(
            "quote",
            &quote.graph,
            index_labels(quote.graph.node_count()),
            quote.source,
        );
        reg
    }

    fn insert_built_in(&self, name: &str, g: &DiGraph, labels: Vec<String>, source: NodeId) {
        let entry = GraphEntry::from_parts(name, g, labels, source)
            .expect("built-in graphs are well-formed");
        self.graphs
            .lock()
            .expect("registry lock poisoned")
            .insert(name.to_string(), Arc::new(entry));
    }

    /// Register an edge list under `name`, with the propagation source
    /// named by `source_label`. Idempotent on identical content; a
    /// [`PutError::Conflict`] on name re-use with different content.
    ///
    /// The heavy work (parse + [`Problem::new`]) runs *outside* the
    /// registry lock, so a large upload never stalls concurrent reads.
    pub fn put_edge_list(
        &self,
        name: &str,
        source_label: &str,
        edges_text: &str,
    ) -> Result<(PutOutcome, Arc<GraphEntry>), PutError> {
        if name.is_empty() {
            return Err(PutError::Invalid("graph name must be non-empty".into()));
        }
        let (g, labels) =
            from_edge_list(edges_text).map_err(|e| PutError::Invalid(e.to_string()))?;
        let source = labels
            .iter()
            .position(|l| l == source_label)
            .map(NodeId::new)
            .ok_or_else(|| {
                PutError::Invalid(format!(
                    "source {source_label:?} does not appear in the edge list"
                ))
            })?;
        // Reserve the graph's resident footprint before building the
        // entry; every refusal path below must hand the bytes back.
        let bytes = graph_estimate(g.node_count() as u64, g.edge_count() as u64);
        self.budget
            .reserve(bytes)
            .map_err(|e| PutError::OverBudget(e.to_string()))?;
        let entry = match GraphEntry::from_parts(name, &g, labels, source) {
            Ok(entry) => entry,
            Err(msg) => {
                self.budget.release(bytes);
                return Err(PutError::Invalid(msg));
            }
        };

        let mut graphs = self.graphs.lock().expect("registry lock poisoned");
        if let Some(existing) = graphs.get(name) {
            self.budget.release(bytes);
            return if existing.fingerprint.edge_hash == entry.fingerprint.edge_hash {
                Ok((PutOutcome::AlreadyPresent, Arc::clone(existing)))
            } else {
                Err(PutError::Conflict {
                    name: name.to_string(),
                    existing: existing.fingerprint.edge_hash.clone(),
                    incoming: entry.fingerprint.edge_hash,
                })
            };
        }
        let entry = Arc::new(entry);
        graphs.insert(name.to_string(), Arc::clone(&entry));
        Ok((PutOutcome::Created, entry))
    }

    /// Look a graph up by name.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        self.graphs
            .lock()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Look a graph up by structural hash (any name it was registered
    /// under). Linear scan — registries hold tens of graphs, not
    /// millions.
    pub fn find_by_edge_hash(&self, edge_hash: &str) -> Option<Arc<GraphEntry>> {
        self.graphs
            .lock()
            .expect("registry lock poisoned")
            .values()
            .find(|e| e.fingerprint.edge_hash == edge_hash)
            .cloned()
    }

    /// All entries, in name order (BTreeMap order ⇒ a stable listing).
    pub fn list(&self) -> Vec<Arc<GraphEntry>> {
        self.graphs
            .lock()
            .expect("registry lock poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.lock().expect("registry lock poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn index_labels(n: usize) -> Vec<String> {
    (0..n).map(|i| i.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_algorithms::SolverKind;

    #[test]
    fn builtins_are_registered_and_deterministic() {
        let a = GraphRegistry::with_builtins();
        let b = GraphRegistry::with_builtins();
        assert_eq!(a.len(), 4);
        for entry in a.list() {
            let twin = b.get(&entry.name).unwrap();
            assert_eq!(entry.fingerprint, twin.fingerprint, "{}", entry.name);
        }
        let fig1 = a.get("fig1").unwrap();
        assert_eq!(fig1.fingerprint.nodes, 7);
        assert_eq!(fig1.fingerprint.source, "s");
        assert_eq!(fig1.node_label(NodeId::new(4)), "z2");
    }

    #[test]
    fn fig1_builtin_solves_like_the_paper() {
        let reg = GraphRegistry::with_builtins();
        let fig1 = reg.get("fig1").unwrap();
        let placement = fig1.problem.solve(SolverKind::GreedyAll, 1);
        assert_eq!(placement.nodes(), &[NodeId::new(4)]); // z2
        assert_eq!(fig1.problem.filter_ratio(&placement), 1.0);
    }

    #[test]
    fn upload_then_get_round_trips() {
        let reg = GraphRegistry::new();
        let (outcome, entry) = reg.put_edge_list("t", "s", "s a\na b\n").unwrap();
        assert_eq!(outcome, PutOutcome::Created);
        assert_eq!(entry.fingerprint.nodes, 3);
        assert!(Arc::ptr_eq(&entry, &reg.get("t").unwrap()));
        assert!(reg
            .find_by_edge_hash(&entry.fingerprint.edge_hash)
            .is_some());
        assert!(reg.find_by_edge_hash("0000000000000000").is_none());
    }

    #[test]
    fn conflicting_upload_keeps_the_original() {
        let reg = GraphRegistry::new();
        reg.put_edge_list("t", "s", "s a\n").unwrap();
        let err = reg.put_edge_list("t", "s", "s a\ns b\n").unwrap_err();
        assert!(matches!(err, PutError::Conflict { .. }), "{err}");
        assert!(err.to_string().contains("already registered"), "{err}");
        assert_eq!(reg.get("t").unwrap().fingerprint.nodes, 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn bad_uploads_are_invalid_not_conflicts() {
        let reg = GraphRegistry::new();
        for (name, source, text, needle) in [
            ("", "s", "s a\n", "non-empty"),
            ("g", "zz", "s a\n", "does not appear"),
            ("g", "s", "s\n", ""), // malformed line: any parse error will do
        ] {
            let err = reg.put_edge_list(name, source, text).unwrap_err();
            assert!(matches!(err, PutError::Invalid(_)), "{name:?}: {err}");
            assert!(err.to_string().contains(needle), "{name:?}: {err}");
        }
        assert!(reg.is_empty());
    }

    #[test]
    fn over_budget_uploads_are_refused_and_release_their_bytes() {
        // Cap fits one tiny graph but not two; conflicts and idempotent
        // re-uploads must hand their reservation back.
        let budget = MemBudget::new(Some(100));
        let reg = GraphRegistry::with_budget(budget.clone());
        reg.put_edge_list("a", "s", "s x\n").unwrap(); // 2 nodes, 1 edge: 32 bytes
        let live_after_a = budget.live();
        assert_eq!(live_after_a, graph_estimate(2, 1));
        // Idempotent re-upload: no extra bytes.
        reg.put_edge_list("a", "s", "s x\n").unwrap();
        assert_eq!(budget.live(), live_after_a);
        // Conflict: refused, bytes released.
        let err = reg.put_edge_list("a", "s", "s x\nx y\n").unwrap_err();
        assert!(matches!(err, PutError::Conflict { .. }), "{err}");
        assert_eq!(budget.live(), live_after_a);
        // A graph that would cross the cap: typed refusal, registry and
        // ledger untouched.
        let big = (0..20).fold(String::new(), |acc, i| acc + &format!("s n{i}\n"));
        let err = reg.put_edge_list("big", "s", &big).unwrap_err();
        assert!(matches!(err, PutError::OverBudget(_)), "{err}");
        assert!(err.to_string().contains("memory budget"), "{err}");
        assert!(reg.get("big").is_none());
        assert_eq!(budget.live(), live_after_a);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn same_content_under_two_names_is_two_entries_one_hash() {
        let reg = GraphRegistry::new();
        let (_, a) = reg.put_edge_list("a", "s", "s x\nx y\n").unwrap();
        let (_, b) = reg.put_edge_list("b", "s", "s x\nx y\n").unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(a.fingerprint.edge_hash, b.fingerprint.edge_hash);
        assert_ne!(a.fingerprint.name, b.fingerprint.name);
    }
}
