//! The `fp` command-line tool (logic; the binary is a thin wrapper).
//!
//! ```text
//! fp solve    --input edges.txt --source <label> --solver G_ALL --k 10
//!             [--seed N] [--format table|csv|dot]
//! fp sweep    --input edges.txt --source <label> --kmax 10
//!             [--trials 25] [--seed N] [--format table|csv]
//! fp stats    --input edges.txt
//! fp generate --dataset layered-sparse|layered-dense|quote|twitter|citation
//!             [--seed N] [--scale F]
//! ```
//!
//! Edge lists are whitespace-separated `source target` lines (`#`
//! comments allowed); node labels are free-form tokens. Everything is
//! returned as a string so the logic is unit-testable; only `main`
//! touches stdout and the process exit code.

use crate::experiment::{run_sweep, SweepConfig};
use crate::report::{cdf_table, sweep_table, Table};
use crate::Problem;
use fp_algorithms::SolverKind;
use fp_datasets::stats::DegreeStats;
use fp_graph::{from_edge_list, to_dot, to_edge_list, DiGraph, NodeId};
use std::collections::HashMap;

/// Parse `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {key:?}"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} is missing a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn parse_solver(name: &str) -> Result<SolverKind, String> {
    let all = [
        SolverKind::GreedyAll,
        SolverKind::LazyGreedyAll,
        SolverKind::GreedyMax,
        SolverKind::GreedyOne,
        SolverKind::GreedyL,
        SolverKind::RandW,
        SolverKind::RandI,
        SolverKind::RandK,
        SolverKind::Betweenness,
    ];
    all.into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let names: Vec<&str> = all.iter().map(|k| k.label()).collect();
            format!(
                "unknown solver {name:?}; expected one of {}",
                names.join(", ")
            )
        })
}

fn load_graph(text: &str, source_label: &str) -> Result<(DiGraph, Vec<String>, NodeId), String> {
    let (g, labels) = from_edge_list(text).map_err(|e| e.to_string())?;
    let source = labels
        .iter()
        .position(|l| l == source_label)
        .map(NodeId::new)
        .ok_or_else(|| format!("source {source_label:?} does not appear in the edge list"))?;
    Ok((g, labels, source))
}

fn cmd_solve(flags: &HashMap<String, String>, input: &str) -> Result<String, String> {
    let (g, labels, source) = load_graph(input, required(flags, "source")?)?;
    let solver = parse_solver(required(flags, "solver")?)?;
    let k: usize = required(flags, "k")?
        .parse()
        .map_err(|_| "--k must be a non-negative integer".to_string())?;
    let seed: u64 = flags.get("seed").map_or(Ok(0), |s| {
        s.parse()
            .map_err(|_| "--seed must be an integer".to_string())
    })?;
    let problem = Problem::new(&g, source).map_err(|e| e.to_string())?;
    let placement = problem.solve_seeded(solver, k, seed);
    let format = flags.get("format").map_or("table", String::as_str);
    match format {
        "dot" => Ok(to_dot(&g, "placement", placement.nodes())),
        "table" | "csv" => {
            let mut table = Table::new(["rank", "node", "FR so far"]);
            let mut running = fp_propagation::FilterSet::empty(g.node_count());
            for (i, &v) in placement.nodes().iter().enumerate() {
                running.insert(v);
                table.row([
                    (i + 1).to_string(),
                    labels[v.index()].clone(),
                    format!("{:.4}", problem.filter_ratio(&running)),
                ]);
            }
            let mut out = format!(
                "graph: {} nodes, {} edges{}\nsolver: {}  k: {}\nphi(empty) = {}  F(V) = {}\n",
                g.node_count(),
                g.edge_count(),
                if problem.was_cyclic() {
                    " (cycles removed via Acyclic)"
                } else {
                    ""
                },
                solver.label(),
                k,
                problem.phi_empty(),
                problem.f_all(),
            );
            out.push_str(&if format == "csv" {
                table.to_csv()
            } else {
                table.to_string()
            });
            Ok(out)
        }
        other => Err(format!("unknown --format {other:?} (table, csv, dot)")),
    }
}

fn cmd_sweep(flags: &HashMap<String, String>, input: &str) -> Result<String, String> {
    let (g, _, source) = load_graph(input, required(flags, "source")?)?;
    let kmax: usize = required(flags, "kmax")?
        .parse()
        .map_err(|_| "--kmax must be a non-negative integer".to_string())?;
    let trials: usize = flags.get("trials").map_or(Ok(25), |s| {
        s.parse()
            .map_err(|_| "--trials must be an integer".to_string())
    })?;
    let seed: u64 = flags.get("seed").map_or(Ok(0), |s| {
        s.parse()
            .map_err(|_| "--seed must be an integer".to_string())
    })?;
    let problem = Problem::new(&g, source).map_err(|e| e.to_string())?;
    let cfg = SweepConfig {
        ks: (0..=kmax).collect(),
        trials,
        seed,
        solvers: SolverKind::PAPER_SET.to_vec(),
    };
    let table = sweep_table(&run_sweep(&problem, &cfg));
    Ok(match flags.get("format").map(String::as_str) {
        Some("csv") => table.to_csv(),
        _ => table.to_string(),
    })
}

fn cmd_stats(input: &str) -> Result<String, String> {
    let (g, _) = from_edge_list(input).map_err(|e| e.to_string())?;
    let indeg = DegreeStats::in_degrees(&g);
    let outdeg = DegreeStats::out_degrees(&g);
    let mut out = format!(
        "nodes: {}\nedges: {}\nsinks: {:.1}%\nsources: {:.1}%\nmean in-degree: {:.2}\nmax in-degree: {}\n\nin-degree CDF:\n",
        g.node_count(),
        g.edge_count(),
        outdeg.zero_fraction() * 100.0,
        indeg.zero_fraction() * 100.0,
        indeg.mean(),
        indeg.max_degree(),
    );
    out.push_str(&cdf_table(&indeg.cdf()).to_string());
    Ok(out)
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<String, String> {
    let seed: u64 = flags.get("seed").map_or(Ok(2012), |s| {
        s.parse()
            .map_err(|_| "--seed must be an integer".to_string())
    })?;
    let scale: f64 = flags.get("scale").map_or(Ok(1.0), |s| {
        s.parse().map_err(|_| "--scale must be a float".to_string())
    })?;
    let g = match required(flags, "dataset")? {
        "layered-sparse" => {
            fp_datasets::layered::generate(&fp_datasets::layered::LayeredParams::paper_sparse(seed))
                .graph
        }
        "layered-dense" => {
            fp_datasets::layered::generate(&fp_datasets::layered::LayeredParams::paper_dense(seed))
                .graph
        }
        "quote" => {
            fp_datasets::quote_like::generate(&fp_datasets::quote_like::QuoteLikeParams {
                nodes: (932.0 * scale) as usize,
                seed,
            })
            .graph
        }
        "twitter" => {
            fp_datasets::twitter_like::generate(&fp_datasets::twitter_like::TwitterLikeParams {
                scale,
                seed,
            })
            .graph
        }
        "citation" => {
            let mut params = fp_datasets::citation_like::CitationLikeParams::default();
            if scale < 1.0 {
                params = fp_datasets::citation_like::test_params(seed);
            }
            params.seed = seed;
            fp_datasets::citation_like::generate(&params).graph
        }
        other => {
            return Err(format!(
            "unknown dataset {other:?} (layered-sparse, layered-dense, quote, twitter, citation)"
        ))
        }
    };
    Ok(to_edge_list(&g))
}

/// Usage text.
pub const USAGE: &str = "usage: fp <solve|sweep|stats|generate> [--flag value]...
  solve    --input FILE --source LABEL --solver NAME --k N [--seed N] [--format table|csv|dot]
  sweep    --input FILE --source LABEL --kmax N [--trials N] [--seed N] [--format table|csv]
  stats    --input FILE
  generate --dataset layered-sparse|layered-dense|quote|twitter|citation [--seed N] [--scale F]";

/// Run the CLI against parsed argv (without the program name); returns
/// the text to print or an error message.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(USAGE.to_string());
    };
    let flags = parse_flags(rest)?;
    let read_input = || -> Result<String, String> {
        let path = required(&flags, "input")?;
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))
    };
    match command.as_str() {
        "solve" => cmd_solve(&flags, &read_input()?),
        "sweep" => cmd_sweep(&flags, &read_input()?),
        "stats" => cmd_stats(&read_input()?),
        "generate" => cmd_generate(&flags),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Like [`run`], but with the edge-list text supplied directly (used by
/// tests to avoid the filesystem).
pub fn run_with_input(args: &[String], input: &str) -> Result<String, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(USAGE.to_string());
    };
    let flags = parse_flags(rest)?;
    match command.as_str() {
        "solve" => cmd_solve(&flags, input),
        "sweep" => cmd_sweep(&flags, input),
        "stats" => cmd_stats(input),
        "generate" => cmd_generate(&flags),
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Figure 1 as a labeled edge list.
    const FIG1: &str = "s x\ns y\nx z1\nx z2\ny z2\ny z3\nz1 w\nz2 w\nz3 w\n";

    #[test]
    fn solve_places_z2_first() {
        let out = run_with_input(
            &args(&["solve", "--source", "s", "--solver", "G_ALL", "--k", "2"]),
            FIG1,
        )
        .unwrap();
        assert!(out.contains("z2"), "{out}");
        assert!(out.contains("1.0000"), "z2 alone reaches FR 1: {out}");
        assert!(out.contains("7 nodes, 9 edges"), "{out}");
    }

    #[test]
    fn solve_dot_output_highlights_filters() {
        let out = run_with_input(
            &args(&[
                "solve", "--source", "s", "--solver", "G_ALL", "--k", "1", "--format", "dot",
            ]),
            FIG1,
        )
        .unwrap();
        assert!(out.starts_with("digraph"));
        assert!(out.contains("style=filled"));
    }

    #[test]
    fn sweep_produces_all_seven_columns() {
        let out = run_with_input(
            &args(&[
                "sweep", "--source", "s", "--kmax", "3", "--trials", "3", "--format", "csv",
            ]),
            FIG1,
        )
        .unwrap();
        assert!(
            out.starts_with("k,G_ALL,G_Max,G_1,G_L,Rand_W,Rand_I,Rand_K"),
            "{out}"
        );
        assert_eq!(out.lines().count(), 5, "header + k=0..3");
    }

    #[test]
    fn stats_reports_shape() {
        let out = run_with_input(&args(&["stats"]), FIG1).unwrap();
        assert!(out.contains("nodes: 7"));
        assert!(out.contains("edges: 9"));
        assert!(out.contains("in-degree CDF"));
    }

    #[test]
    fn generate_roundtrips_through_the_parser() {
        let out = run_with_input(
            &args(&[
                "generate",
                "--dataset",
                "quote",
                "--scale",
                "0.3",
                "--seed",
                "7",
            ]),
            "",
        )
        .unwrap();
        let (g, _) = from_edge_list(&out).unwrap();
        assert!(g.node_count() > 100);
    }

    #[test]
    fn helpful_errors() {
        let e = run_with_input(&args(&["solve", "--source", "s"]), FIG1).unwrap_err();
        assert!(e.contains("--solver"), "{e}");
        let e = run_with_input(
            &args(&["solve", "--source", "nope", "--solver", "G_ALL", "--k", "1"]),
            FIG1,
        )
        .unwrap_err();
        assert!(e.contains("nope"));
        let e = run_with_input(
            &args(&["solve", "--source", "s", "--solver", "wat", "--k", "1"]),
            FIG1,
        )
        .unwrap_err();
        assert!(e.contains("unknown solver"));
        let e = run_with_input(&args(&["frobnicate"]), "").unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn solver_names_are_case_insensitive() {
        assert_eq!(parse_solver("g_all").unwrap(), SolverKind::GreedyAll);
        assert_eq!(parse_solver("G_MAX").unwrap(), SolverKind::GreedyMax);
        assert_eq!(parse_solver("rand_k").unwrap(), SolverKind::RandK);
    }

    #[test]
    fn flag_parser_rejects_malformed_input() {
        assert!(parse_flags(&args(&["positional"])).is_err());
        assert!(parse_flags(&args(&["--dangling"])).is_err());
        let ok = parse_flags(&args(&["--a", "1", "--b", "2"])).unwrap();
        assert_eq!(ok["a"], "1");
        assert_eq!(ok["b"], "2");
    }
}
