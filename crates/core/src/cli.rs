//! The `fp` command-line tool (logic; the binary is a thin wrapper).
//!
//! ```text
//! fp solve    --input edges.txt --source <label> --solver G_ALL --k 10
//!             [--seed N] [--format table|csv|dot]
//! fp sweep    --input edges.txt --source <label> --kmax 10
//!             [--trials 25] [--seed N] [--format table|csv]
//!             [--out DIR] [--jobs N] [--workers N]
//! fp sweep    --dataset power-law:1000000:3:7 --kmax 10 [--mem-budget 512M]
//! fp dataset  (--input edges.txt | --gen SPEC) [--stats true]
//!             [--out FILE] [--chunk N] [--mem-budget BYTES]
//! fp report   --run DIR [--format table|csv|json]
//! fp report   --list DIR
//! fp diff     --a DIR --b DIR [--epsilon E]
//! fp gc       --out DIR --keep N | --max-age SECS
//! fp stats    --input edges.txt
//! fp generate --dataset layered-sparse|layered-dense|quote|twitter|citation
//!             [--seed N] [--scale F]
//! fp serve    [--addr HOST:PORT] [--ttl-secs N] [--trace FILE]
//! fp loadtest [--graph NAME] [--solver NAME] [--seed N] [--clients N]
//!             [--requests N] [--kmax N] [--baseline FILE]
//!             [--transport frame|http] [--mutations N]
//!             [--check FILE [--tolerance F]]
//! fp online   --input edges.txt --source <label> [--k N] [--events N]
//!             [--seed N] [--thresholds F,F,...] [--format table|csv]
//!             [--out DIR]
//! fp trace    --summary FILE
//! ```
//!
//! Edge lists are whitespace-separated `source target` lines (`#`
//! comments allowed); node labels are free-form tokens. Everything is
//! returned as a string so the logic is unit-testable; only `main`
//! touches stdout and the process exit code.
//!
//! `sweep --out DIR` persists the run under `DIR/<id>/` as
//! `manifest.json`, `result.json`, and `result.csv`, where `id` is a
//! hash of config and dataset; re-running the identical sweep is a
//! cache hit that loads from disk instead of recomputing.
//! `report --run DIR/<id>` re-renders a stored run, byte-for-byte
//! identical to the table the sweep printed; `report --list DIR`
//! enumerates every run stored under `DIR`; `diff --a DIR --b DIR`
//! compares two stored runs per (solver, k), flags FR deltas beyond an
//! epsilon, and exits non-zero when any budget regressed (the
//! store-growth companion to the determinism gate: rerun a sweep after
//! a change, diff against the archived run); `gc --out DIR` evicts
//! stored runs least-recently-used first (`--keep N` bounds the count,
//! `--max-age SECS` the age) — cache hits count as uses, so a run that
//! keeps answering sweeps stays young however old its bytes are.
//!
//! `sweep --workers N` evaluates the sweep on `N` worker *processes*
//! instead of in-process threads: each worker is this same binary
//! re-exec'd with the hidden `worker` subcommand, fed cells over the
//! `fp-results::protocol` pipe protocol (DESIGN.md §7). The stored
//! bytes are identical to an in-process run's — `--jobs`/`--workers`
//! are scheduling knobs, never part of the result.
//!
//! `serve` runs the long-lived placement daemon (see [`crate::serve`]
//! and DESIGN.md §10); `loadtest` drives an in-process daemon with
//! concurrent clients, verifies every answer bit-for-bit against the
//! batch ladder, and reports p50/p99 latency and throughput (see
//! [`crate::loadtest`]).
//!
//! Every subcommand's flag vocabulary lives in one `FLAG_SPEC` table;
//! a flag outside it — a typo like `--solvr` — is an error, not
//! silently ignored, and the help-audit test keeps [`USAGE`] and the
//! table in lockstep.

use crate::experiment::{run_sweep_with, SweepConfig, SweepResult};
use crate::loadtest::{
    check_against_baseline, merge_serve_section, run_loadtest, LoadtestConfig, Transport,
    DEFAULT_CHECK_TOLERANCE,
};
use crate::registry::GraphRegistry;
use crate::report::{cdf_table, sweep_table, Table};
use crate::serve::{ApiState, Server, DEFAULT_ADDR};
use crate::Problem;
use fp_algorithms::SolverKind;
use fp_datasets::stats::DegreeStats;
use fp_graph::{from_edge_list, to_dot, to_edge_list, DiGraph, NodeId};
use fp_propagation::CGraph;
use fp_results::{
    csv::sweep_csv, worker::PoolOptions, worker::WorkerSpawner, DatasetFingerprint, GcPolicy,
    NetOptions, RunManifest, RunStore, RunnerOptions, SweepListener, ToJson,
};
use fp_scale::{
    parse_bytes, stream_stats, Csr32, EdgeStream, FileEdgeStream, MemBudget, ScaleError,
};
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

/// Parse `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {key:?}"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} is missing a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

/// Per-command flag vocabulary: the single source of truth for what
/// each subcommand accepts. Dispatch rejects any flag not listed here
/// (a typo'd `--solvr` is an error, never silently ignored), and the
/// help-audit test asserts [`USAGE`] documents exactly this set.
const FLAG_SPEC: &[(&str, &[&str])] = &[
    (
        "solve",
        &["input", "source", "solver", "k", "seed", "format"],
    ),
    (
        "sweep",
        &[
            "input",
            "source",
            "kmax",
            "trials",
            "seed",
            "format",
            "out",
            "jobs",
            "workers",
            "listen",
            "token",
            "trace",
            "dataset",
            "mem-budget",
        ],
    ),
    ("worker", &["connect", "token", "retries"]),
    ("report", &["run", "list", "format"]),
    ("diff", &["a", "b", "epsilon"]),
    ("gc", &["out", "keep", "max-age"]),
    ("stats", &["input"]),
    ("generate", &["dataset", "seed", "scale"]),
    (
        "dataset",
        &["input", "gen", "stats", "chunk", "mem-budget", "out"],
    ),
    (
        "serve",
        &["addr", "ttl-secs", "max-sessions", "trace", "mem-budget"],
    ),
    (
        "loadtest",
        &[
            "graph",
            "solver",
            "seed",
            "clients",
            "requests",
            "kmax",
            "baseline",
            "transport",
            "check",
            "tolerance",
            "mutations",
            "retries",
        ],
    ),
    (
        "online",
        &[
            "input",
            "source",
            "k",
            "events",
            "seed",
            "thresholds",
            "format",
            "out",
        ],
    ),
    ("trace", &["summary"]),
];

/// Refuse flags outside the command's [`FLAG_SPEC`] vocabulary.
fn reject_unknown_flags(command: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let Some((_, allowed)) = FLAG_SPEC.iter().find(|(name, _)| *name == command) else {
        return Ok(()); // unknown commands are reported by the dispatcher
    };
    let mut unknown: Vec<&str> = flags
        .keys()
        .map(String::as_str)
        .filter(|name| !allowed.contains(name))
        .collect();
    unknown.sort_unstable();
    if let Some(first) = unknown.first() {
        let accepts: Vec<String> = allowed.iter().map(|f| format!("--{f}")).collect();
        return Err(format!(
            "unknown flag --{first} for {command} (accepts: {})",
            accepts.join(", ")
        ));
    }
    Ok(())
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn parse_solver(name: &str) -> Result<SolverKind, String> {
    let all = [
        SolverKind::GreedyAll,
        SolverKind::LazyGreedyAll,
        SolverKind::GreedyMax,
        SolverKind::GreedyOne,
        SolverKind::GreedyL,
        SolverKind::RandW,
        SolverKind::RandI,
        SolverKind::RandK,
        SolverKind::Betweenness,
    ];
    all.into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let names: Vec<&str> = all.iter().map(|k| k.label()).collect();
            format!(
                "unknown solver {name:?}; expected one of {}",
                names.join(", ")
            )
        })
}

fn load_graph(text: &str, source_label: &str) -> Result<(DiGraph, Vec<String>, NodeId), String> {
    let (g, labels) = from_edge_list(text).map_err(|e| e.to_string())?;
    let source = labels
        .iter()
        .position(|l| l == source_label)
        .map(NodeId::new)
        .ok_or_else(|| format!("source {source_label:?} does not appear in the edge list"))?;
    Ok((g, labels, source))
}

fn cmd_solve(flags: &HashMap<String, String>, input: &str) -> Result<String, String> {
    let (g, labels, source) = load_graph(input, required(flags, "source")?)?;
    let solver = parse_solver(required(flags, "solver")?)?;
    let k: usize = required(flags, "k")?
        .parse()
        .map_err(|_| "--k must be a non-negative integer".to_string())?;
    let seed: u64 = flags.get("seed").map_or(Ok(0), |s| {
        s.parse()
            .map_err(|_| "--seed must be an integer".to_string())
    })?;
    let problem = Problem::new(&g, source).map_err(|e| e.to_string())?;
    let placement = problem.solve_seeded(solver, k, seed);
    let format = flags.get("format").map_or("table", String::as_str);
    match format {
        "dot" => Ok(to_dot(&g, "placement", placement.nodes())),
        "table" | "csv" => {
            let mut table = Table::new(["rank", "node", "FR so far"]);
            let mut running = fp_propagation::FilterSet::empty(g.node_count());
            for (i, &v) in placement.nodes().iter().enumerate() {
                running.insert(v);
                table.row([
                    (i + 1).to_string(),
                    labels[v.index()].clone(),
                    format!("{:.4}", problem.filter_ratio(&running)),
                ]);
            }
            let mut out = format!(
                "graph: {} nodes, {} edges{}\nsolver: {}  k: {}\nphi(empty) = {}  F(V) = {}\n",
                g.node_count(),
                g.edge_count(),
                if problem.was_cyclic() {
                    " (cycles removed via Acyclic)"
                } else {
                    ""
                },
                solver.label(),
                k,
                problem.phi_empty(),
                problem.f_all(),
            );
            out.push_str(&if format == "csv" {
                table.to_csv()
            } else {
                table.to_string()
            });
            Ok(out)
        }
        other => Err(format!("unknown --format {other:?} (table, csv, dot)")),
    }
}

/// The sweep's store protocol, shared by the edge-list and streamed
/// paths: no `--out` computes directly; with `--out`, an identical
/// stored run is a cache hit and a miss computes then persists.
fn sweep_with_store(
    flags: &HashMap<String, String>,
    cfg: &SweepConfig,
    dataset: DatasetFingerprint,
    header: &mut String,
    compute: impl FnOnce() -> Result<SweepResult, String>,
) -> Result<SweepResult, String> {
    match flags.get("out") {
        None => compute(),
        Some(out) => {
            let store = RunStore::open(out)?;
            let id = RunStore::run_id(cfg, &dataset);
            match store.load(&id)? {
                Some(stored) => {
                    *header = format!(
                        "run {id}: cache hit, loaded from {}\n",
                        store.run_dir(&id).display()
                    );
                    Ok(stored.result)
                }
                None => {
                    let result = compute()?;
                    let manifest = RunManifest::new(cfg.clone(), dataset);
                    let dir = store.save(&manifest, &result)?;
                    *header = format!("run {id}: saved to {}\n", dir.display());
                    Ok(result)
                }
            }
        }
    }
}

fn cmd_sweep(flags: &HashMap<String, String>, input: Option<&str>) -> Result<String, String> {
    let streamed = flags.get("dataset");
    if streamed.is_some() {
        for incompatible in ["input", "source", "workers", "listen", "token"] {
            if flags.contains_key(incompatible) {
                return Err(format!(
                    "--dataset streams a generated graph into an in-process solve; \
                     it cannot be combined with --{incompatible}"
                ));
            }
        }
    } else if flags.contains_key("mem-budget") {
        return Err(
            "--mem-budget caps the streamed graph build; it requires --dataset SPEC".to_string(),
        );
    }
    let kmax: usize = required(flags, "kmax")?
        .parse()
        .map_err(|_| "--kmax must be a non-negative integer".to_string())?;
    let trials: usize = flags.get("trials").map_or(Ok(25), |s| {
        s.parse()
            .map_err(|_| "--trials must be an integer".to_string())
    })?;
    let seed: u64 = flags.get("seed").map_or(Ok(0), |s| {
        s.parse()
            .map_err(|_| "--seed must be an integer".to_string())
    })?;
    let jobs: usize = flags.get("jobs").map_or(Ok(0), |s| {
        s.parse()
            .map_err(|_| "--jobs must be a non-negative integer (0 = one per core)".to_string())
    })?;
    let workers: usize = flags.get("workers").map_or(Ok(0), |s| {
        s.parse()
            .map_err(|_| "--workers must be a non-negative integer (0 = in-process)".to_string())
    })?;
    if workers > 0 && flags.contains_key("jobs") {
        return Err(
            "--jobs sizes the in-process thread runner and --workers replaces it with a \
             process pool; pass one or the other"
                .to_string(),
        );
    }
    let listen = flags.get("listen").map(String::as_str);
    if listen.is_some() {
        if workers > 0 || flags.contains_key("jobs") {
            return Err(
                "--listen hands every cell to remote workers over TCP; it cannot be \
                 combined with --jobs or --workers"
                    .to_string(),
            );
        }
        if required(flags, "token")?.is_empty() {
            return Err("--listen requires a non-empty --token".to_string());
        }
    } else if flags.contains_key("token") {
        return Err("--token only applies with --listen".to_string());
    }
    let format = flags.get("format").map_or("table", String::as_str);
    if !matches!(format, "table" | "csv") {
        return Err(format!("unknown --format {format:?} (table, csv)"));
    }
    let cfg = SweepConfig {
        ks: (0..=kmax).collect(),
        trials,
        seed,
        solvers: SolverKind::PAPER_SET.to_vec(),
    };

    let trace = trace_enable(flags);
    let mut header = String::new();
    let result = if let Some(spec) = streamed {
        // Streamed path: generator → two-pass compact CSR under the
        // memory budget → c-graph, no intermediate edge list. The
        // fingerprint hashes the CSR, which is bit-identical to the
        // materialized generator graph (the stream-replay tests in
        // fp-datasets pin this), so stored runs are interchangeable
        // with ones computed from the equivalent edge-list file.
        let budget = parse_mem_budget(flags)?;
        let (mut stream, source) = parse_gen_spec(spec, parse_chunk(flags)?)?;
        let csr32 = Csr32::from_stream(&mut *stream, &budget).map_err(|e| e.to_string())?;
        let graph_bytes = csr32.bytes();
        drop(stream);
        let csr = csr32.into_csr();
        let dataset = DatasetFingerprint::of_csr(spec, &csr, source, &source.index().to_string());
        let cg = CGraph::from_csr(csr, source).map_err(|e| e.to_string())?;
        let problem = Problem::from_cgraph(cg);
        let result = sweep_with_store(flags, &cfg, dataset, &mut header, || {
            Ok(
                run_sweep_with(&problem, &cfg, &RunnerOptions::with_jobs(jobs))
                    .expect("no deadline"),
            )
        });
        // The CSR's bytes stay reserved until the solve is over; hand
        // them back so the process-wide gauges read zero at exit.
        budget.release(graph_bytes);
        result?
    } else {
        let source_label = required(flags, "source")?;
        let input = input.ok_or_else(|| "missing required flag --input".to_string())?;
        let (g, _, source) = load_graph(input, source_label)?;
        // The three sweep backends: in-process threads (--jobs), a pool
        // of re-exec'd worker processes (--workers), or remote TCP
        // workers dialing into --listen. Identical bits any way.
        let compute = || -> Result<SweepResult, String> {
            if let Some(addr) = listen {
                let token = required(flags, "token")?;
                let listener = SweepListener::bind(addr, NetOptions::new(token))?;
                eprintln!(
                    "fp sweep: listening on {} for remote workers \
                     (join with `fp worker --connect ADDR --token ...`)",
                    listener.local_addr()
                );
                listener.run(&g, source, &cfg, &PoolOptions::default().from_env()?)
            } else if workers > 0 {
                let spawner = WorkerSpawner::current_exe()?;
                fp_results::run_sweep_workers(
                    &spawner,
                    &g,
                    source,
                    &cfg,
                    &PoolOptions::with_workers(workers).from_env()?,
                )
            } else {
                let problem = Problem::new(&g, source).map_err(|e| e.to_string())?;
                Ok(
                    run_sweep_with(&problem, &cfg, &RunnerOptions::with_jobs(jobs))
                        .expect("no deadline"),
                )
            }
        };
        let dataset = DatasetFingerprint::of_graph("edge-list", &g, source, source_label);
        sweep_with_store(flags, &cfg, dataset, &mut header, compute)?
    };
    if let Some(path) = trace {
        header.push_str(&trace_dump(path)?);
    }
    let table = sweep_table(&result);
    // CSV output must stay machine-clean: the run-status and trace
    // lines are only prepended to the human-readable table (`report
    // --format csv` and `sweep --out --format csv` emit
    // interchangeable bytes); the trace file is written either way.
    Ok(if format == "csv" {
        table.to_csv()
    } else {
        header + &table.to_string()
    })
}

fn cmd_report(flags: &HashMap<String, String>) -> Result<String, String> {
    if let Some(root) = flags.get("list") {
        if flags.contains_key("run") {
            return Err("--list and --run are mutually exclusive".to_string());
        }
        if flags.contains_key("format") {
            return Err("--list renders a table only; --format applies to --run".to_string());
        }
        return cmd_report_list(root);
    }
    let dir = required(flags, "run")?;
    let stored = RunStore::load_dir(Path::new(dir))?;
    let result: SweepResult = stored.result;
    match flags.get("format").map_or("table", String::as_str) {
        "table" => Ok(sweep_table(&result).to_string()),
        "csv" => Ok(sweep_csv(&result)),
        "json" => Ok(result.to_json().to_pretty()),
        other => Err(format!("unknown --format {other:?} (table, csv, json)")),
    }
}

/// `fp report --list DIR`: one row per stored run.
fn cmd_report_list(root: &str) -> Result<String, String> {
    if !Path::new(root).is_dir() {
        return Err(format!("{root:?} is not a directory"));
    }
    let store = RunStore::open(root)?;
    let runs = store.list()?;
    let mut table = Table::new([
        "run",
        "dataset",
        "solvers",
        "k max",
        "trials",
        "used (unix)",
    ]);
    for run in &runs {
        table.row([
            run.id.clone(),
            run.manifest.dataset.name.clone(),
            run.manifest.config.solvers.len().to_string(),
            run.manifest
                .config
                .ks
                .iter()
                .max()
                .map_or("-".to_string(), |k| k.to_string()),
            run.manifest.config.trials.to_string(),
            run.modified_unix.to_string(),
        ]);
    }
    Ok(format!("{} run(s) under {root}\n{table}", runs.len()))
}

/// `fp diff --a DIR --b DIR [--epsilon E]`: compare two stored runs
/// per (solver, k).
///
/// `DIR` is a run directory (what `report --run` takes). Every FR
/// delta with `|Δ| > epsilon` is listed; the command *errors* (so the
/// binary exits non-zero) when any budget **regresses** — `FR_b <
/// FR_a − epsilon` — or when the two runs are incomparable: different
/// dataset fingerprints (FRs from different graphs mean nothing side
/// by side), different trial counts (different estimators), or
/// different solver sets / budget axes. Seeds may differ — comparing
/// seeds is a legitimate robustness check. Improvements are reported
/// but are not failures, so the tool gates "no solver got worse" in
/// CI while tolerating genuine gains.
fn cmd_diff(flags: &HashMap<String, String>) -> Result<String, String> {
    let a_dir = required(flags, "a")?;
    let b_dir = required(flags, "b")?;
    let epsilon: f64 = flags.get("epsilon").map_or(Ok(1e-12), |s| {
        s.parse()
            .map_err(|_| "--epsilon must be a number".to_string())
    })?;
    if !epsilon.is_finite() || epsilon < 0.0 {
        return Err("--epsilon must be non-negative".to_string());
    }
    let a = RunStore::load_dir(Path::new(a_dir)).map_err(|e| format!("--a: {e}"))?;
    let b = RunStore::load_dir(Path::new(b_dir)).map_err(|e| format!("--b: {e}"))?;

    // FR pairs only mean something on the same experiment: same graph
    // (structural fingerprint, not just the display name) and the same
    // trial count (a different estimator is not a regression). Seeds
    // MAY differ — comparing seeds is a legitimate robustness check.
    let (da, db) = (&a.manifest.dataset, &b.manifest.dataset);
    if (&da.edge_hash, da.nodes, da.edges, &da.source)
        != (&db.edge_hash, db.nodes, db.edges, &db.source)
    {
        return Err(format!(
            "runs are not comparable: --a ran on {} ({} nodes, {} edges, source {:?}, hash {}), \
             --b on {} ({} nodes, {} edges, source {:?}, hash {})",
            da.name,
            da.nodes,
            da.edges,
            da.source,
            da.edge_hash,
            db.name,
            db.nodes,
            db.edges,
            db.source,
            db.edge_hash
        ));
    }
    if a.manifest.config.trials != b.manifest.config.trials {
        return Err(format!(
            "runs are not comparable: --a averaged {} trial(s) per point, --b {}",
            a.manifest.config.trials, b.manifest.config.trials
        ));
    }

    let labels = |run: &fp_results::StoredRun| -> Vec<String> {
        run.result.series.iter().map(|s| s.label.clone()).collect()
    };
    if labels(&a) != labels(&b) {
        return Err(format!(
            "runs are not comparable: --a has solvers [{}], --b has [{}]",
            labels(&a).join(", "),
            labels(&b).join(", ")
        ));
    }

    let mut table = Table::new(["solver", "k", "FR a", "FR b", "delta"]);
    let mut flagged = 0usize;
    let mut regressions = 0usize;
    for (sa, sb) in a.result.series.iter().zip(&b.result.series) {
        let ka: Vec<usize> = sa.points.iter().map(|&(k, _)| k).collect();
        let kb: Vec<usize> = sb.points.iter().map(|&(k, _)| k).collect();
        if ka != kb {
            return Err(format!(
                "runs are not comparable: {} has budgets {ka:?} in --a but {kb:?} in --b",
                sa.label
            ));
        }
        for (&(k, fra), &(_, frb)) in sa.points.iter().zip(&sb.points) {
            let delta = frb - fra;
            if delta.abs() > epsilon {
                flagged += 1;
                if delta < 0.0 {
                    regressions += 1;
                }
                table.row([
                    sa.label.clone(),
                    k.to_string(),
                    format!("{fra:.6}"),
                    format!("{frb:.6}"),
                    format!("{delta:+.6}"),
                ]);
            }
        }
    }
    let header = format!(
        "{} vs {}: {} delta(s) beyond epsilon {epsilon:e}, {} regression(s)\n",
        a.manifest.id, b.manifest.id, flagged, regressions
    );
    let body = if flagged == 0 {
        header
    } else {
        header + &table.to_string()
    };
    if regressions > 0 {
        // Error so `fp` exits non-zero — the report still reaches the
        // operator (on stderr), which is what a CI gate wants.
        return Err(body);
    }
    Ok(body)
}

/// `fp gc --out DIR --keep N | --max-age SECS`: evict stored runs,
/// least recently *used* first.
fn cmd_gc(flags: &HashMap<String, String>) -> Result<String, String> {
    let root = required(flags, "out")?;
    let keep = flags
        .get("keep")
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| "--keep must be a non-negative integer".to_string())
        })
        .transpose()?;
    let max_age = flags
        .get("max-age")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| "--max-age must be seconds".to_string())
        })
        .transpose()?;
    let policy = match (keep, max_age) {
        (Some(n), None) => GcPolicy::KeepNewest(n),
        (None, Some(secs)) => GcPolicy::MaxAge(std::time::Duration::from_secs(secs)),
        (Some(_), Some(_)) => return Err("--keep and --max-age are mutually exclusive".to_string()),
        (None, None) => return Err("gc needs a policy: --keep N or --max-age SECS".to_string()),
    };
    if !Path::new(root).is_dir() {
        return Err(format!("{root:?} is not a directory"));
    }
    let store = RunStore::open(root)?;
    let total = store.list()?.len();
    let evicted = store.gc(policy)?;
    let mut out = format!("evicted {} of {total} run(s) under {root}\n", evicted.len());
    for run in &evicted {
        out.push_str(&format!(
            "  {}  {}  last used {}\n",
            run.id, run.manifest.dataset.name, run.modified_unix
        ));
    }
    Ok(out)
}

fn cmd_stats(input: &str) -> Result<String, String> {
    let (g, _) = from_edge_list(input).map_err(|e| e.to_string())?;
    let indeg = DegreeStats::in_degrees(&g);
    let outdeg = DegreeStats::out_degrees(&g);
    let mut out = format!(
        "nodes: {}\nedges: {}\nsinks: {:.1}%\nsources: {:.1}%\nmean in-degree: {:.2}\nmax in-degree: {}\n\nin-degree CDF:\n",
        g.node_count(),
        g.edge_count(),
        outdeg.zero_fraction() * 100.0,
        indeg.zero_fraction() * 100.0,
        indeg.mean(),
        indeg.max_degree(),
    );
    out.push_str(&cdf_table(&indeg.cdf()).to_string());
    Ok(out)
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<String, String> {
    let seed: u64 = flags.get("seed").map_or(Ok(2012), |s| {
        s.parse()
            .map_err(|_| "--seed must be an integer".to_string())
    })?;
    let scale: f64 = flags.get("scale").map_or(Ok(1.0), |s| {
        s.parse().map_err(|_| "--scale must be a float".to_string())
    })?;
    let g = match required(flags, "dataset")? {
        "layered-sparse" => {
            fp_datasets::layered::generate(&fp_datasets::layered::LayeredParams::paper_sparse(seed))
                .graph
        }
        "layered-dense" => {
            fp_datasets::layered::generate(&fp_datasets::layered::LayeredParams::paper_dense(seed))
                .graph
        }
        "quote" => {
            fp_datasets::quote_like::generate(&fp_datasets::quote_like::QuoteLikeParams {
                nodes: (932.0 * scale) as usize,
                seed,
            })
            .graph
        }
        "twitter" => {
            fp_datasets::twitter_like::generate(&fp_datasets::twitter_like::TwitterLikeParams {
                scale,
                seed,
            })
            .graph
        }
        "citation" => {
            let mut params = fp_datasets::citation_like::CitationLikeParams::default();
            if scale < 1.0 {
                params = fp_datasets::citation_like::test_params(seed);
            }
            params.seed = seed;
            fp_datasets::citation_like::generate(&params).graph
        }
        other => {
            return Err(format!(
            "unknown dataset {other:?} (layered-sparse, layered-dense, quote, twitter, citation)"
        ))
        }
    };
    Ok(to_edge_list(&g))
}

/// The `--gen` spec grammar shared by `fp dataset` and `fp sweep
/// --dataset` (kept in one place so the two error messages agree).
const GEN_SPEC_GRAMMAR: &str = "power-law:NODES:DEGREE:SEED, erdos:NODES:P:SEED, \
     layered-sparse:SEED, layered-dense:SEED, citation:SEED, twitter:SCALE:SEED";

/// Parse a `--gen SPEC` into a boxed [`EdgeStream`] plus the graph's
/// propagation source. Every stream replays its generator's exact edge
/// sequence (pinned by the `stream_replays_generate_edge_for_edge`
/// tests in `fp-datasets`), so a CSR built from it is bit-identical to
/// freezing the materialized graph.
fn parse_gen_spec(spec: &str, chunk: usize) -> Result<(Box<dyn EdgeStream>, NodeId), String> {
    let bad = |what: String| format!("invalid --gen spec {spec:?}: {what}");
    let usize_of = |tok: &str, what: &str| {
        tok.parse::<usize>()
            .map_err(|_| bad(format!("{what} {tok:?} is not a non-negative integer")))
    };
    let u64_of = |tok: &str, what: &str| {
        tok.parse::<u64>()
            .map_err(|_| bad(format!("{what} {tok:?} is not a non-negative integer")))
    };
    let f64_of = |tok: &str, what: &str| {
        tok.parse::<f64>()
            .map_err(|_| bad(format!("{what} {tok:?} is not a number")))
    };
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["power-law", nodes, degree, seed] => {
            let params = fp_datasets::power_law::PowerLawParams {
                nodes: usize_of(nodes, "node count")?,
                mean_degree: usize_of(degree, "mean degree")?,
                seed: u64_of(seed, "seed")?,
            };
            if params.nodes < 1 || params.mean_degree < 1 {
                return Err(bad("node count and mean degree must be at least 1".into()));
            }
            let s = fp_datasets::power_law::PowerLawStream::new(&params).with_chunk(chunk);
            Ok((Box::new(s), NodeId::new(0)))
        }
        ["erdos", n, p, seed] => {
            let p = f64_of(p, "edge probability")?;
            if !(0.0..=1.0).contains(&p) {
                return Err(bad("edge probability must be in [0, 1]".into()));
            }
            let s = fp_datasets::erdos_renyi::ErdosRenyiStream::new(
                usize_of(n, "node count")?,
                p,
                u64_of(seed, "seed")?,
            )
            .with_chunk(chunk);
            let source = s.source();
            Ok((Box::new(s), source))
        }
        ["layered-sparse", seed] | ["layered-dense", seed] => {
            let seed = u64_of(seed, "seed")?;
            let params = if parts[0] == "layered-sparse" {
                fp_datasets::layered::LayeredParams::paper_sparse(seed)
            } else {
                fp_datasets::layered::LayeredParams::paper_dense(seed)
            };
            let s = fp_datasets::layered::LayeredStream::new(&params).with_chunk(chunk);
            Ok((Box::new(s), NodeId::new(0)))
        }
        ["citation", seed] => {
            let params = fp_datasets::citation_like::CitationLikeParams {
                seed: u64_of(seed, "seed")?,
                ..Default::default()
            };
            let s = fp_datasets::citation_like::CitationLikeStream::new(&params).with_chunk(chunk);
            let source = s.source();
            Ok((Box::new(s), source))
        }
        ["twitter", scale, seed] => {
            let scale = f64_of(scale, "scale")?;
            if !(scale.is_finite() && scale > 0.0) {
                return Err(bad("scale must be positive".into()));
            }
            let params = fp_datasets::twitter_like::TwitterLikeParams {
                scale,
                seed: u64_of(seed, "seed")?,
            };
            let s = fp_datasets::twitter_like::TwitterLikeStream::new(&params).with_chunk(chunk);
            let source = s.source();
            Ok((Box::new(s), source))
        }
        _ => Err(bad(format!("expected {GEN_SPEC_GRAMMAR}"))),
    }
}

/// `--chunk N`: edges per stream chunk (the O(chunk) working set).
fn parse_chunk(flags: &HashMap<String, String>) -> Result<usize, String> {
    flags
        .get("chunk")
        .map_or(Ok(fp_scale::DEFAULT_CHUNK), |s| match s.parse::<usize>() {
            Ok(c) if c > 0 => Ok(c),
            _ => Err("--chunk must be a positive integer".to_string()),
        })
}

/// `--mem-budget BYTES`: a hard cap on tracked graph memory (suffixes
/// `K`/`M`/`G`, 1024-based). Without the flag, an accounting-only
/// budget that never rejects.
fn parse_mem_budget(flags: &HashMap<String, String>) -> Result<MemBudget, String> {
    let cap = flags
        .get("mem-budget")
        .map(|s| parse_bytes(s))
        .transpose()?;
    Ok(MemBudget::new(cap))
}

/// `fp dataset (--input FILE | --gen SPEC) [--stats true|false]
/// [--out FILE] [--chunk N] [--mem-budget BYTES]`: streamed dataset
/// plumbing — every path holds O(chunk) edges plus O(nodes) counters,
/// never the edge list.
///
/// `--stats true` reports streaming statistics (nodes, edges, degree
/// maxima, depth); otherwise the edges are streamed to `--out FILE` as
/// numeric `source target` lines, the dialect `--input` and
/// `fp sweep --dataset` read back.
fn cmd_dataset(flags: &HashMap<String, String>) -> Result<String, String> {
    let chunk = parse_chunk(flags)?;
    let budget = parse_mem_budget(flags)?;
    let (mut stream, label): (Box<dyn EdgeStream>, String) =
        match (flags.get("input"), flags.get("gen")) {
            (Some(_), Some(_)) => {
                return Err("--input and --gen are mutually exclusive".to_string())
            }
            (Some(path), None) => (
                Box::new(
                    FileEdgeStream::open(path)
                        .map_err(|e| e.to_string())?
                        .with_chunk(chunk),
                ),
                path.clone(),
            ),
            (None, Some(spec)) => (parse_gen_spec(spec, chunk)?.0, spec.clone()),
            (None, None) => return Err("dataset needs --input FILE or --gen SPEC".to_string()),
        };
    let stats = match flags.get("stats").map(String::as_str) {
        None | Some("false") => false,
        Some("true") => true,
        Some(other) => return Err(format!("--stats must be true or false, got {other:?}")),
    };
    if stats {
        if flags.contains_key("out") {
            return Err("--stats reports statistics; it cannot be combined with --out".to_string());
        }
        let s = stream_stats(&mut *stream, &budget).map_err(|e| e.to_string())?;
        return Ok(format!(
            "dataset: {label}\nnodes: {}\nedges: {}\nmax in-degree: {}\nmax out-degree: {}\n\
             max degree: {}\ndepth: {}\nstream passes: {}\n",
            s.nodes, s.edges, s.max_in_degree, s.max_out_degree, s.max_degree, s.depth, s.passes
        ));
    }
    let out_path = flags.get("out").ok_or_else(|| {
        "dataset needs --out FILE (or --stats true); edges are streamed, never buffered".to_string()
    })?;
    let file =
        std::fs::File::create(out_path).map_err(|e| format!("cannot write {out_path:?}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    let mut edges: u64 = 0;
    let mut nodes: u64 = stream.node_hint().unwrap_or(0);
    let mut chunk_buf = Vec::new();
    let io_err = |e: std::io::Error| ScaleError::Io {
        path: out_path.clone(),
        reason: e.to_string(),
    };
    fp_scale::for_each_edge(&mut *stream, &mut chunk_buf, |u, v| {
        edges += 1;
        nodes = nodes.max(u64::from(u.max(v)) + 1);
        writeln!(w, "{u} {v}").map_err(io_err)
    })
    .map_err(|e| e.to_string())?;
    w.flush().map_err(|e| io_err(e).to_string())?;
    Ok(format!(
        "wrote {edges} edge(s) over {nodes} node(s) to {out_path}\n"
    ))
}

/// Turn on the global span recorder when `--trace FILE` was passed;
/// returns the dump path so the caller can write the ring out when the
/// command finishes. Tracing touches monotonic clocks only, so the
/// traced command's *results* are byte-identical to an untraced run
/// (the determinism gate holds this).
fn trace_enable(flags: &HashMap<String, String>) -> Option<&String> {
    let path = flags.get("trace");
    if path.is_some() {
        fp_obs::tracer().enable();
    }
    path
}

/// Stop recording and dump the ring as Chrome trace-event JSON; returns
/// a one-line status for the human-readable output.
fn trace_dump(path: &str) -> Result<String, String> {
    let tracer = fp_obs::tracer();
    tracer.disable();
    std::fs::write(path, tracer.chrome_trace_json())
        .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    let overwritten = tracer.overwritten();
    let wrapped = if overwritten > 0 {
        format!(" ({overwritten} older span(s) overwritten by the ring)")
    } else {
        String::new()
    };
    Ok(format!(
        "trace: {} span(s) written to {path}{wrapped}\n",
        tracer.len()
    ))
}

/// `fp trace --summary FILE`: aggregate a dumped Chrome trace per span
/// name — count, total, mean, and max duration, heaviest first.
fn cmd_trace(flags: &HashMap<String, String>) -> Result<String, String> {
    let path = required(flags, "summary")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let doc = fp_results::Json::parse(&text).map_err(|e| format!("{path:?}: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(fp_results::Json::as_array)
        .ok_or_else(|| format!("{path:?} has no traceEvents array (not a trace dump?)"))?;
    let mut durations = Vec::with_capacity(events.len());
    for event in events {
        // Complete ("X") events carry name + dur; anything else (e.g.
        // metadata records) is skipped rather than rejected.
        let (Some(name), Some(dur)) = (
            event.get("name").and_then(fp_results::Json::as_str),
            event.get("dur").and_then(fp_results::Json::as_f64),
        ) else {
            continue;
        };
        durations.push((name.to_string(), dur));
    }
    let rows = fp_obs::trace::summarize(&durations);
    let mut out = format!(
        "{} span(s) across {} name(s) in {path}\n",
        durations.len(),
        rows.len()
    );
    if let Some(overwritten) = doc
        .get("overwrittenSpans")
        .and_then(fp_results::Json::as_u64)
    {
        if overwritten > 0 {
            out.push_str(&format!(
                "ring overwrote {overwritten} older span(s) before the dump\n"
            ));
        }
    }
    let mut table = Table::new(["span", "count", "total us", "mean us", "max us"]);
    for row in &rows {
        table.row([
            row.name.clone(),
            row.count.to_string(),
            format!("{:.1}", row.total_us),
            format!("{:.1}", row.mean_us),
            format!("{:.1}", row.max_us),
        ]);
    }
    out.push_str(&table.to_string());
    Ok(out)
}

/// `fp serve [--addr HOST:PORT] [--ttl-secs N]`: run the placement
/// daemon until a `stop` call arrives (DESIGN.md §10).
///
/// Blocks for the server's whole lifetime; the bound address is
/// announced on stderr up front (stdout stays machine-clean for the
/// shutdown summary). Built-in graphs are preloaded; more can be
/// uploaded over the wire. `--ttl-secs N` expires sessions idle longer
/// than `N` seconds (default: never).
fn cmd_serve(flags: &HashMap<String, String>) -> Result<String, String> {
    let addr = flags.get("addr").map_or(DEFAULT_ADDR, String::as_str);
    let ttl = flags
        .get("ttl-secs")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| "--ttl-secs must be a non-negative integer".to_string())
        })
        .transpose()?
        .map(std::time::Duration::from_secs);
    let max_sessions = flags
        .get("max-sessions")
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| "--max-sessions must be a non-negative integer".to_string())
        })
        .transpose()?;
    // Cap the process-wide fp-scale budget before any registry exists:
    // graph uploads reserve their footprint against it and are refused
    // with 503 (never OOM-killed) once the cap is reached.
    if let Some(cap) = flags
        .get("mem-budget")
        .map(|s| parse_bytes(s))
        .transpose()?
    {
        fp_scale::set_global_cap(Some(cap));
    }
    let trace = trace_enable(flags);
    let registry = GraphRegistry::with_builtins();
    let graphs = registry.len();
    let server = Server::bind(addr, ApiState::with_limits(registry, ttl, max_sessions))?;
    let local = server.local_addr();
    eprintln!(
        "fp serve: listening on {local} ({graphs} built-in graph(s); frame + HTTP on one port; \
         POST /stop or a `stop` call shuts down)"
    );
    server.run()?;
    let mut out = format!("fp serve: stopped ({local})\n");
    if let Some(path) = trace {
        out.push_str(&trace_dump(path)?);
    }
    Ok(out)
}

/// `fp loadtest [--graph NAME] [--solver NAME] [--seed N] [--clients N]
/// [--requests N] [--kmax N] [--transport frame|http] [--baseline FILE]
/// [--check FILE [--tolerance F]]`: drive an in-process daemon with
/// concurrent clients and report verified latency.
///
/// Every response is checked bit-for-bit against the batch ladder
/// before any latency is reported. `--transport http` drives the HTTP
/// endpoint instead of the frame protocol and measures a
/// `Connection: close` phase and a keep-alive phase side by side.
/// `--baseline FILE` folds the numbers into an existing
/// `BENCH_baseline.json`'s `serve` section; `--check FILE` instead
/// *compares* against that recorded section and errors (non-zero exit)
/// when p50/p99 latency or throughput regressed beyond `--tolerance`
/// (default [`DEFAULT_CHECK_TOLERANCE`]).
fn cmd_loadtest(flags: &HashMap<String, String>) -> Result<String, String> {
    let mut cfg = LoadtestConfig::default();
    if let Some(graph) = flags.get("graph") {
        cfg.graph = graph.clone();
    }
    if let Some(solver) = flags.get("solver") {
        cfg.solver = parse_solver(solver)?;
    }
    let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
        flags.get(name).map_or(Ok(default), |s| {
            s.parse()
                .map_err(|_| format!("--{name} must be a non-negative integer"))
        })
    };
    cfg.seed = flags.get("seed").map_or(Ok(cfg.seed), |s| {
        s.parse()
            .map_err(|_| "--seed must be an integer".to_string())
    })?;
    cfg.clients = parse_usize("clients", cfg.clients)?;
    cfg.requests = parse_usize("requests", cfg.requests)?;
    cfg.kmax = parse_usize("kmax", cfg.kmax)?;
    cfg.transport = flags
        .get("transport")
        .map_or(Ok(cfg.transport), |s| Transport::parse(s))?;
    cfg.mutations = parse_usize("mutations", cfg.mutations)?;
    cfg.retries = flags.get("retries").map_or(Ok(cfg.retries), |s| {
        s.parse()
            .map_err(|_| "--retries must be a non-negative integer".to_string())
    })?;
    if cfg.clients == 0 || cfg.requests == 0 {
        return Err("--clients and --requests must be at least 1".to_string());
    }
    if flags.contains_key("tolerance") && !flags.contains_key("check") {
        return Err("--tolerance only applies with --check FILE".to_string());
    }
    let tolerance: f64 = flags
        .get("tolerance")
        .map_or(Ok(DEFAULT_CHECK_TOLERANCE), |s| {
            s.parse()
                .map_err(|_| "--tolerance must be a number".to_string())
        })?;
    if !tolerance.is_finite() || tolerance < 0.0 {
        return Err("--tolerance must be non-negative".to_string());
    }
    if flags.contains_key("check") && flags.contains_key("baseline") {
        return Err(
            "--baseline rewrites the serve section that --check compares against; \
             pass one or the other"
                .to_string(),
        );
    }
    let report = run_loadtest(GraphRegistry::with_builtins(), &cfg)?;
    let mut out = format!(
        "loadtest: {} × {} on {} / {} (seed {}, k 0..={})\n\
         {} request(s), every answer bit-identical to the batch ladder\n\
         p50 {} µs   p99 {} µs   max {} µs   {:.0} req/s   wall {} ms\n",
        cfg.clients,
        cfg.requests,
        cfg.graph,
        cfg.solver.label(),
        cfg.seed,
        cfg.kmax,
        report.total_requests,
        report.p50_us,
        report.p99_us,
        report.max_us,
        report.throughput_rps,
        report.wall_ms,
    );
    if cfg.retries > 0 || report.retries_total > 0 {
        out.push_str(&format!(
            "retries: {} (408/503 responses retried, budget {} per request)\n",
            report.retries_total, cfg.retries,
        ));
    }
    if let Some(http) = &report.http {
        let phase = |name: &str, p: &crate::loadtest::PhaseNumbers| {
            format!(
                "  {name}: p50 {} µs   p99 {} µs   max {} µs   {:.0} req/s\n",
                p.p50_us, p.p99_us, p.max_us, p.throughput_rps,
            )
        };
        out.push_str("http phases (headline numbers are keep-alive):\n");
        out.push_str(&phase("close     ", &http.close));
        out.push_str(&phase("keep-alive", &http.keep_alive));
    }
    if let Some(m) = &report.mutation {
        out.push_str(&format!(
            "mutation phase: {} edge insert(s) applied, every rebuilt answer \
             bit-identical to the batch ladder\n  \
             mutate p50 {} µs   p99 {} µs   max {} µs\n",
            report.mutations_applied, m.p50_us, m.p99_us, m.max_us,
        ));
    }
    if let Some(path) = flags.get("check") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let doc = fp_results::Json::parse(&text).map_err(|e| format!("{path:?}: {e}"))?;
        let check = check_against_baseline(&report, &doc, tolerance)?;
        out.push_str(&format!("check against {path} (tolerance {tolerance}):\n"));
        for line in &check.lines {
            out.push_str(&format!("  {line}\n"));
        }
        if check.regressed {
            // Error so `fp` exits non-zero — the report still reaches
            // the operator (on stderr), which is what a CI gate wants.
            return Err(out);
        }
    }
    if let Some(path) = flags.get("baseline") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let mut doc = fp_results::Json::parse(&text).map_err(|e| format!("{path:?}: {e}"))?;
        merge_serve_section(&mut doc, &report);
        std::fs::write(path, doc.to_pretty()).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        out.push_str(&format!("serve section updated in {path}\n"));
    }
    Ok(out)
}

/// `fp online --input FILE --source LABEL [--k N] [--events N] [--seed N]
/// [--thresholds F,F,...] [--format table|csv] [--out DIR]`: maintain a
/// `k`-filter placement under a deterministic edge-mutation stream.
///
/// The stream comes from [`crate::online::mutation_stream`] — seeded,
/// insert-forward, applicable by construction — and is replayed once
/// per drift threshold, so one run reads out the whole
/// repair-cost-vs-quality trade-off: threshold `0` repairs on any Φ
/// movement (rebuild quality, maximum repair cost), large thresholds
/// never repair (zero cost, drifting quality). Every number reported
/// is a count or an FR — no wall-clock values — so two runs over the
/// same inputs produce byte-identical output and `--out` directories
/// (`online.json`, `online.csv`) that `diff -r` clean; the CI
/// online-determinism job relies on exactly that.
fn cmd_online(flags: &HashMap<String, String>, input: &str) -> Result<String, String> {
    let (g, _labels, source) = load_graph(input, required(flags, "source")?)?;
    let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
        flags.get(name).map_or(Ok(default), |s| {
            s.parse()
                .map_err(|_| format!("--{name} must be a non-negative integer"))
        })
    };
    let k = parse_usize("k", 8)?;
    let events = parse_usize("events", 200)?;
    let seed: u64 = flags.get("seed").map_or(Ok(0), |s| {
        s.parse()
            .map_err(|_| "--seed must be an integer".to_string())
    })?;
    let thresholds: Vec<f64> = flags
        .get("thresholds")
        .map_or("0,0.05,0.1", String::as_str)
        .split(',')
        .map(|s| {
            let t: f64 = s
                .trim()
                .parse()
                .map_err(|_| format!("bad threshold {s:?} in --thresholds"))?;
            if !t.is_finite() || t < 0.0 {
                return Err(format!("--thresholds must be finite and >= 0, got {s:?}"));
            }
            Ok(t)
        })
        .collect::<Result<_, _>>()?;
    if thresholds.is_empty() {
        return Err("--thresholds must name at least one drift threshold".to_string());
    }

    let problem = Problem::new(&g, source).map_err(|e| e.to_string())?;
    let base = problem.cgraph();
    let stream = crate::online::mutation_stream(base, events, seed);

    let mut table = Table::new([
        "threshold",
        "applied",
        "repairs",
        "repair picks",
        "final FR",
        "rebuild FR",
        "drift",
    ]);
    let mut rows_json = Vec::new();
    let mut edges_end = base.edge_count();
    for &t in &thresholds {
        let mut driver = crate::online::OnlinePlacement::new(
            base.clone(),
            crate::online::OnlineConfig {
                k,
                drift_threshold: t,
            },
        );
        for &m in &stream {
            driver
                .apply_event(m)
                .map_err(|e| format!("stream event rejected: {e}"))?;
        }
        let stats = driver.stats();
        let final_fr = driver.quality();
        let cg = driver.engine().cgraph();
        edges_end = cg.edge_count();
        let rebuilt = crate::online::greedy_rebuild(cg, k);
        let cache = fp_propagation::ObjectiveCache::<fp_num::Wide128>::new(cg);
        let rebuild_fr = cache.filter_ratio(cg, &rebuilt);
        let drift = driver.drift();
        table.row([
            format!("{t}"),
            stats.applied.to_string(),
            stats.repairs.to_string(),
            stats.repair_picks.to_string(),
            format!("{final_fr:.6}"),
            format!("{rebuild_fr:.6}"),
            format!("{drift:.6}"),
        ]);
        rows_json.push(fp_results::Json::object([
            ("threshold", t.to_json()),
            ("applied", stats.applied.to_json()),
            ("repairs", stats.repairs.to_json()),
            ("repair_picks", stats.repair_picks.to_json()),
            ("final_fr", final_fr.to_json()),
            ("rebuild_fr", rebuild_fr.to_json()),
            ("drift", drift.to_json()),
        ]));
    }

    let header = format!(
        "online: {} nodes, {} -> {} edges over {} event(s) (seed {}, k {})\n\
         each threshold replays the same deterministic stream; repair = drop all + re-greedy\n",
        g.node_count(),
        base.edge_count(),
        edges_end,
        events,
        seed,
        k,
    );
    let csv = {
        let mut csv = String::from("threshold,applied,repairs,repair_picks,final_fr,rebuild_fr\n");
        for row in &rows_json {
            csv.push_str(&format!(
                "{},{},{},{},{},{}\n",
                row.expect("threshold")?.as_f64().unwrap_or(0.0),
                row.expect("applied")?.as_usize().unwrap_or(0),
                row.expect("repairs")?.as_usize().unwrap_or(0),
                row.expect("repair_picks")?.as_usize().unwrap_or(0),
                row.expect("final_fr")?.as_f64().unwrap_or(0.0),
                row.expect("rebuild_fr")?.as_f64().unwrap_or(0.0),
            ));
        }
        csv
    };
    if let Some(dir) = flags.get("out") {
        let dir = Path::new(dir);
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        let doc = fp_results::Json::object([
            ("schema", fp_results::Json::Str("fp-online-run/1".into())),
            (
                "graph",
                fp_results::Json::object([
                    ("nodes", g.node_count().to_json()),
                    ("edges_start", base.edge_count().to_json()),
                    ("edges_end", edges_end.to_json()),
                ]),
            ),
            ("k", k.to_json()),
            ("events", events.to_json()),
            ("seed", seed.to_json()),
            ("thresholds", fp_results::Json::Array(rows_json)),
        ]);
        std::fs::write(dir.join("online.json"), doc.to_pretty())
            .map_err(|e| format!("cannot write online.json: {e}"))?;
        std::fs::write(dir.join("online.csv"), &csv)
            .map_err(|e| format!("cannot write online.csv: {e}"))?;
    }
    let format = flags.get("format").map_or("table", String::as_str);
    match format {
        "table" => Ok(format!("{header}{table}")),
        "csv" => Ok(format!("{header}{csv}")),
        other => Err(format!("unknown format {other:?} (want table or csv)")),
    }
}

/// Usage text. `worker` with no flags (the process-pool child behind
/// `sweep --workers`) stays undocumented: it speaks a binary frame
/// protocol on stdin/stdout and is never typed by a person. `worker
/// --connect` *is* typed by a person — it joins a remote sweep.
pub const USAGE: &str =
    "usage: fp <solve|sweep|worker|report|diff|gc|stats|generate|dataset|serve|loadtest|online|trace> [flags]
  solve    --input FILE --source LABEL --solver NAME --k N [--seed N] [--format table|csv|dot]
  sweep    --input FILE --source LABEL --kmax N [--trials N] [--seed N] [--format table|csv]
           [--out DIR] [--jobs N] [--workers N] [--listen ADDR --token T] [--trace FILE]
  sweep    --dataset SPEC --kmax N [--mem-budget BYTES] [--trials N] [--seed N]
           [--format table|csv] [--out DIR] [--jobs N] [--trace FILE]
           (--out persists the run; identical reruns are cache hits;
            --workers evaluates on worker processes — same bytes as in-process;
            --listen ADDR accepts remote `fp worker --connect` workers over TCP,
            authenticated by the shared --token — still the same bytes;
            --trace dumps Chrome trace-event JSON of the run;
            --dataset SPEC streams a generator straight into a compact CSR —
            no edge list is ever materialized — and solves in-process;
            --mem-budget BYTES caps tracked graph memory, failing with a typed
            error instead of the OOM killer; suffixes K/M/G, 1024-based)
  worker   --connect HOST:PORT --token T [--retries N]
           (join a remote sweep as a worker: dial the dispatcher's --listen
            socket, authenticate, evaluate cells until the sweep completes;
            lost connections reconnect with capped exponential backoff, up to
            --retries consecutive failures, default 5)
  report   --run DIR [--format table|csv|json]   (re-render a stored run from disk)
  report   --list DIR                            (enumerate the runs stored under DIR)
  diff     --a DIR --b DIR [--epsilon E]         (compare two stored runs per (solver, k);
            flags FR deltas beyond epsilon, exits non-zero if any budget regressed)
  gc       --out DIR --keep N | --max-age SECS   (evict stored runs, LRU first;
            cache hits count as uses)
  stats    --input FILE
  generate --dataset layered-sparse|layered-dense|quote|twitter|citation [--seed N] [--scale F]
  dataset  (--input FILE | --gen SPEC) [--stats true|false] [--out FILE]
           [--chunk N] [--mem-budget BYTES]
           (streamed dataset plumbing, O(chunk) edges resident: --stats true
            reports nodes/edges/max degree/depth from the stream; otherwise
            edges stream to --out FILE as numeric `source target` lines.
            SPEC is one of power-law:NODES:DEGREE:SEED, erdos:NODES:P:SEED,
            layered-sparse:SEED, layered-dense:SEED, citation:SEED,
            twitter:SCALE:SEED)
  serve    [--addr HOST:PORT] [--ttl-secs N] [--max-sessions N] [--mem-budget BYTES] [--trace FILE]
           (long-running placement daemon: frame + HTTP transports on one port,
            built-in graphs preloaded, warm sessions per (graph, solver, seed),
            GET /metrics for Prometheus text or ?format=json; POST /stop or a
            `stop` call shuts it down; --max-sessions N caps live sessions,
            evicting expired-then-idlest warm ones and answering 503 with
            Retry-After when every slot is busy; --mem-budget BYTES caps
            tracked graph memory — over-budget uploads are refused with 503;
            --trace dumps spans at shutdown)
  loadtest [--graph NAME] [--solver NAME] [--seed N] [--clients N] [--requests N] [--kmax N]
           [--transport frame|http] [--mutations N] [--retries N] [--baseline FILE]
           [--check FILE [--tolerance F]]
           (drive an in-process daemon with concurrent clients, verify every answer
            against the batch ladder, report p50/p99/throughput; --transport http
            measures Connection: close and keep-alive phases side by side;
            --mutations N follows up with N live edge insertions, each verified
            against a batch solve on the mutated graph;
            --retries N retries 408/503 answers with seeded jittered backoff
            and reports the retry count;
            --baseline folds the numbers into BENCH_baseline.json's serve section;
            --check compares against a recorded baseline and exits non-zero on
            regression beyond the tolerance)
  online   --input FILE --source LABEL [--k N] [--events N] [--seed N]
           [--thresholds F,F,...] [--format table|csv] [--out DIR]
           (maintain a k-filter placement under a deterministic edge-mutation
            stream, re-running greedy repair when Phi drift crosses each
            threshold; reports repair cost vs quality per threshold — counts
            and FRs only, so --out run dirs are byte-identical across reruns)
  trace    --summary FILE  (aggregate a dumped Chrome trace per span name:
            count, total, mean, max — heaviest first)";

/// Run the CLI against parsed argv (without the program name); returns
/// the text to print or an error message.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(USAGE.to_string());
    };
    if command == "worker" {
        let flags = parse_flags(rest)?;
        reject_unknown_flags(command, &flags)?;
        return match flags.get("connect") {
            // Remote: dial a `fp sweep --listen` dispatcher and serve
            // cells until it says shutdown.
            Some(addr) => {
                let token = required(&flags, "token")?;
                let retries: u32 = flags.get("retries").map_or(Ok(5), |s| {
                    s.parse()
                        .map_err(|_| "--retries must be a non-negative integer".to_string())
                })?;
                let summary = crate::worker::serve_connect(addr, token, retries)?;
                Ok(summary + "\n")
            }
            // Local: serve the process-pool protocol on real
            // stdin/stdout until the dispatcher shuts us down. Prints
            // nothing; spawned by `sweep --workers`, not a person.
            None => {
                if !flags.is_empty() {
                    return Err(
                        "worker --token/--retries only apply with --connect HOST:PORT".to_string(),
                    );
                }
                // `Stdout` (not the lock) so the heartbeat thread can
                // share it.
                crate::worker::serve(std::io::stdin().lock(), std::io::stdout())?;
                Ok(String::new())
            }
        };
    }
    let flags = parse_flags(rest)?;
    reject_unknown_flags(command, &flags)?;
    let read_input = || -> Result<String, String> {
        let path = required(&flags, "input")?;
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))
    };
    match command.as_str() {
        "solve" => cmd_solve(&flags, &read_input()?),
        "sweep" => {
            // `--dataset` sweeps generate their graph; nothing to read.
            let input = if flags.contains_key("dataset") {
                None
            } else {
                Some(read_input()?)
            };
            cmd_sweep(&flags, input.as_deref())
        }
        "report" => cmd_report(&flags),
        "diff" => cmd_diff(&flags),
        "gc" => cmd_gc(&flags),
        "stats" => cmd_stats(&read_input()?),
        "generate" => cmd_generate(&flags),
        "dataset" => cmd_dataset(&flags),
        "serve" => cmd_serve(&flags),
        "loadtest" => cmd_loadtest(&flags),
        "online" => cmd_online(&flags, &read_input()?),
        "trace" => cmd_trace(&flags),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Like [`run`], but with the edge-list text supplied directly (used by
/// tests to avoid the filesystem).
pub fn run_with_input(args: &[String], input: &str) -> Result<String, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(USAGE.to_string());
    };
    let flags = parse_flags(rest)?;
    reject_unknown_flags(command, &flags)?;
    match command.as_str() {
        "solve" => cmd_solve(&flags, input),
        "sweep" => cmd_sweep(&flags, Some(input)),
        "report" => cmd_report(&flags),
        "diff" => cmd_diff(&flags),
        "gc" => cmd_gc(&flags),
        "stats" => cmd_stats(input),
        "generate" => cmd_generate(&flags),
        "dataset" => cmd_dataset(&flags),
        "serve" => Err("serve blocks on a live socket; use `fp serve` directly".to_string()),
        "loadtest" => cmd_loadtest(&flags),
        "online" => cmd_online(&flags, input),
        "trace" => cmd_trace(&flags),
        "worker" => Err("worker serves the pool protocol on real stdin/stdout".to_string()),
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Figure 1 as a labeled edge list.
    const FIG1: &str = "s x\ns y\nx z1\nx z2\ny z2\ny z3\nz1 w\nz2 w\nz3 w\n";

    #[test]
    fn solve_places_z2_first() {
        let out = run_with_input(
            &args(&["solve", "--source", "s", "--solver", "G_ALL", "--k", "2"]),
            FIG1,
        )
        .unwrap();
        assert!(out.contains("z2"), "{out}");
        assert!(out.contains("1.0000"), "z2 alone reaches FR 1: {out}");
        assert!(out.contains("7 nodes, 9 edges"), "{out}");
    }

    #[test]
    fn solve_dot_output_highlights_filters() {
        let out = run_with_input(
            &args(&[
                "solve", "--source", "s", "--solver", "G_ALL", "--k", "1", "--format", "dot",
            ]),
            FIG1,
        )
        .unwrap();
        assert!(out.starts_with("digraph"));
        assert!(out.contains("style=filled"));
    }

    #[test]
    fn sweep_produces_all_seven_columns() {
        let out = run_with_input(
            &args(&[
                "sweep", "--source", "s", "--kmax", "3", "--trials", "3", "--format", "csv",
            ]),
            FIG1,
        )
        .unwrap();
        assert!(
            out.starts_with("k,G_ALL,G_Max,G_1,G_L,Rand_W,Rand_I,Rand_K"),
            "{out}"
        );
        assert_eq!(out.lines().count(), 5, "header + k=0..3");
    }

    #[test]
    fn stats_reports_shape() {
        let out = run_with_input(&args(&["stats"]), FIG1).unwrap();
        assert!(out.contains("nodes: 7"));
        assert!(out.contains("edges: 9"));
        assert!(out.contains("in-degree CDF"));
    }

    #[test]
    fn generate_roundtrips_through_the_parser() {
        let out = run_with_input(
            &args(&[
                "generate",
                "--dataset",
                "quote",
                "--scale",
                "0.3",
                "--seed",
                "7",
            ]),
            "",
        )
        .unwrap();
        let (g, _) = from_edge_list(&out).unwrap();
        assert!(g.node_count() > 100);
    }

    #[test]
    fn helpful_errors() {
        let e = run_with_input(&args(&["solve", "--source", "s"]), FIG1).unwrap_err();
        assert!(e.contains("--solver"), "{e}");
        let e = run_with_input(
            &args(&["solve", "--source", "nope", "--solver", "G_ALL", "--k", "1"]),
            FIG1,
        )
        .unwrap_err();
        assert!(e.contains("nope"));
        let e = run_with_input(
            &args(&["solve", "--source", "s", "--solver", "wat", "--k", "1"]),
            FIG1,
        )
        .unwrap_err();
        assert!(e.contains("unknown solver"));
        let e = run_with_input(&args(&["frobnicate"]), "").unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn solver_names_are_case_insensitive() {
        assert_eq!(parse_solver("g_all").unwrap(), SolverKind::GreedyAll);
        assert_eq!(parse_solver("G_MAX").unwrap(), SolverKind::GreedyMax);
        assert_eq!(parse_solver("rand_k").unwrap(), SolverKind::RandK);
    }

    #[test]
    fn flag_parser_rejects_malformed_input() {
        assert!(parse_flags(&args(&["positional"])).is_err());
        assert!(parse_flags(&args(&["--dangling"])).is_err());
        let ok = parse_flags(&args(&["--a", "1", "--b", "2"])).unwrap();
        assert_eq!(ok["a"], "1");
        assert_eq!(ok["b"], "2");
    }

    #[test]
    fn unknown_flags_are_rejected_not_ignored() {
        // The historical failure mode: `--solvr G_ALL` parsed fine and
        // the command ran with the default — now it names the typo and
        // lists the vocabulary.
        let e = run_with_input(
            &args(&[
                "solve", "--source", "s", "--solvr", "G_ALL", "--k", "1", "--solver", "G_ALL",
            ]),
            FIG1,
        )
        .unwrap_err();
        assert!(e.contains("unknown flag --solvr"), "{e}");
        assert!(e.contains("--solver"), "vocabulary listed: {e}");

        let e = run_with_input(&args(&["gc", "--out", "/tmp", "--kep", "2"]), "").unwrap_err();
        assert!(e.contains("unknown flag --kep for gc"), "{e}");

        // `run` (the file-reading dispatcher) gates too, before
        // touching the filesystem.
        let e = run(&args(&["stats", "--inptu", "/nonexistent"])).unwrap_err();
        assert!(e.contains("unknown flag --inptu"), "{e}");
    }

    /// Every flag the spec allows is documented in [`USAGE`], and every
    /// `--flag` token in [`USAGE`] is allowed by some command's spec —
    /// the help text can neither under- nor over-promise.
    #[test]
    fn online_reports_one_row_per_threshold_deterministically() {
        let run = || {
            run_with_input(
                &args(&[
                    "online",
                    "--source",
                    "s",
                    "--k",
                    "2",
                    "--events",
                    "20",
                    "--seed",
                    "7",
                    "--thresholds",
                    "0,1e9",
                ]),
                FIG1,
            )
            .unwrap()
        };
        let out = run();
        assert!(out.contains("online: 7 nodes"), "{out}");
        assert!(out.contains("20 event(s)"), "{out}");
        // One row per threshold; the never-repair threshold spends no
        // picks, the repair-on-anything one repairs at least once.
        let row = |prefix: &str| {
            out.lines()
                .map(str::trim_start)
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("no {prefix:?} row in {out}"))
                .split_whitespace()
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        let always = row("0 ");
        let never = row("1000000000 ");
        assert!(always[2].parse::<usize>().unwrap() >= 1, "{out}");
        assert_eq!(never[2], "0", "{out}");
        assert_eq!(never[3], "0", "{out}");
        assert!(out == run(), "fp online must be deterministic");
    }

    #[test]
    fn online_csv_lists_repair_cost_vs_quality() {
        let out = run_with_input(
            &args(&[
                "online",
                "--source",
                "s",
                "--k",
                "2",
                "--events",
                "16",
                "--thresholds",
                "0",
                "--format",
                "csv",
            ]),
            FIG1,
        )
        .unwrap();
        assert!(
            out.contains("threshold,applied,repairs,repair_picks,final_fr,rebuild_fr"),
            "{out}"
        );
        // Threshold 0 tracks rebuild quality exactly: the final FR
        // column equals the rebuild FR column on every row.
        let row = out
            .lines()
            .find(|l| l.starts_with("0,"))
            .unwrap_or_else(|| panic!("no threshold-0 row in {out}"));
        let cells: Vec<&str> = row.split(',').collect();
        assert_eq!(cells[4], cells[5], "{out}");
    }

    #[test]
    fn online_out_dir_is_byte_identical_across_reruns() {
        let run_into = |dir: &std::path::Path| {
            run_with_input(
                &args(&[
                    "online",
                    "--source",
                    "s",
                    "--k",
                    "2",
                    "--events",
                    "12",
                    "--out",
                    dir.to_str().unwrap(),
                ]),
                FIG1,
            )
            .unwrap();
        };
        let a = temp_dir("online-a");
        let b = temp_dir("online-b");
        run_into(&a);
        run_into(&b);
        for file in ["online.json", "online.csv"] {
            let left = std::fs::read(a.join(file)).unwrap();
            let right = std::fs::read(b.join(file)).unwrap();
            assert_eq!(left, right, "{file} differs between identical runs");
        }
        let doc = std::fs::read_to_string(a.join("online.json")).unwrap();
        assert!(doc.contains("fp-online-run/1"), "{doc}");
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn online_rejects_bad_thresholds() {
        for bad in ["nan", "-1", "inf", ""] {
            let err = run_with_input(
                &args(&["online", "--source", "s", "--thresholds", bad]),
                FIG1,
            )
            .unwrap_err();
            assert!(err.contains("threshold"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn loadtest_accepts_a_mutations_flag() {
        // Flag vocabulary only — the full phase is exercised by the
        // loadtest module's own tests.
        let err = run_with_input(&args(&["loadtest", "--mutations", "x"]), "").unwrap_err();
        assert!(err.contains("--mutations"), "{err}");
    }

    #[test]
    fn loadtest_rejects_a_malformed_retries_budget() {
        let err = run_with_input(&args(&["loadtest", "--retries", "many"]), "").unwrap_err();
        assert!(err.contains("--retries"), "{err}");
    }

    #[test]
    fn serve_rejects_a_malformed_session_cap() {
        // `run` (not `run_with_input`): the flag is parsed before the
        // socket binds, so this fails fast without serving anything.
        let err = run(&args(&["serve", "--max-sessions", "lots"])).unwrap_err();
        assert!(err.contains("--max-sessions"), "{err}");
    }

    #[test]
    fn listen_excludes_local_backends_and_demands_a_token() {
        let sweep = |extra: &[&str]| {
            let mut a = args(&["sweep", "--source", "s", "--kmax", "1"]);
            a.extend(extra.iter().map(|s| s.to_string()));
            run_with_input(&a, FIG1).unwrap_err()
        };
        let err = sweep(&["--listen", "127.0.0.1:0", "--token", "t", "--jobs", "2"]);
        assert!(err.contains("--listen"), "{err}");
        let err = sweep(&["--listen", "127.0.0.1:0", "--token", "t", "--workers", "2"]);
        assert!(err.contains("--listen"), "{err}");
        let err = sweep(&["--listen", "127.0.0.1:0"]);
        assert!(err.contains("token"), "{err}");
        let err = sweep(&["--token", "t"]);
        assert!(err.contains("--token only applies with --listen"), "{err}");
    }

    #[test]
    fn dataset_stats_match_the_materialized_generator() {
        let out = run_with_input(
            &args(&["dataset", "--gen", "erdos:40:0.12:9", "--stats", "true"]),
            "",
        )
        .unwrap();
        let (g, _) = fp_datasets::erdos_renyi::generate(40, 0.12, 9);
        assert!(out.contains(&format!("nodes: {}", g.node_count())), "{out}");
        assert!(out.contains(&format!("edges: {}", g.edge_count())), "{out}");
        assert!(out.contains("depth: "), "{out}");
    }

    #[test]
    fn dataset_streams_edges_to_a_file_that_round_trips() {
        let dir = temp_dir("dataset-out");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        let out = run_with_input(
            &args(&[
                "dataset",
                "--gen",
                "power-law:200:3:5",
                "--out",
                path.to_str().unwrap(),
                "--chunk",
                "17",
            ]),
            "",
        )
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        // Statistics of the written file equal the generator stream's
        // (everything after the `dataset:` label line).
        let from_file = run_with_input(
            &args(&[
                "dataset",
                "--input",
                path.to_str().unwrap(),
                "--stats",
                "true",
            ]),
            "",
        )
        .unwrap();
        let from_gen = run_with_input(
            &args(&["dataset", "--gen", "power-law:200:3:5", "--stats", "true"]),
            "",
        )
        .unwrap();
        let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tail(&from_file), tail(&from_gen));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dataset_rejects_conflicting_and_malformed_requests() {
        for (cmd_args, needle) in [
            (vec!["dataset"], "--input FILE or --gen SPEC"),
            (
                vec!["dataset", "--input", "a", "--gen", "erdos:2:0.5:1"],
                "mutually exclusive",
            ),
            (vec!["dataset", "--gen", "erdos:2:0.5:1"], "--out FILE"),
            (
                vec!["dataset", "--gen", "erdos:2:0.5:1", "--stats", "yes"],
                "--stats must be true or false",
            ),
            (
                vec![
                    "dataset",
                    "--gen",
                    "erdos:2:0.5:1",
                    "--stats",
                    "true",
                    "--out",
                    "x",
                ],
                "cannot be combined with --out",
            ),
            (
                vec!["dataset", "--gen", "mystery:1", "--stats", "true"],
                "invalid --gen spec",
            ),
            (
                vec!["dataset", "--gen", "power-law:0:3:1", "--stats", "true"],
                "at least 1",
            ),
            (
                vec!["dataset", "--gen", "erdos:9:1.5:1", "--stats", "true"],
                "probability",
            ),
            (
                vec!["dataset", "--gen", "twitter:-1:1", "--stats", "true"],
                "scale must be positive",
            ),
            (
                vec![
                    "dataset",
                    "--gen",
                    "erdos:2:0.5:1",
                    "--stats",
                    "true",
                    "--chunk",
                    "0",
                ],
                "--chunk",
            ),
            (
                vec![
                    "dataset",
                    "--gen",
                    "erdos:2:0.5:1",
                    "--stats",
                    "true",
                    "--mem-budget",
                    "9Z",
                ],
                "byte count",
            ),
        ] {
            let err = run_with_input(&args(&cmd_args), "").unwrap_err();
            assert!(err.contains(needle), "{cmd_args:?}: {err}");
        }
    }

    #[test]
    fn sweep_dataset_matches_the_materialized_graph() {
        let out = run_with_input(
            &args(&[
                "sweep",
                "--dataset",
                "erdos:30:0.15:9",
                "--kmax",
                "3",
                "--trials",
                "2",
                "--seed",
                "7",
                "--format",
                "csv",
            ]),
            "",
        )
        .unwrap();
        let (g, source) = fp_datasets::erdos_renyi::generate(30, 0.15, 9);
        let problem = Problem::new(&g, source).unwrap();
        let cfg = SweepConfig {
            ks: (0..=3).collect(),
            trials: 2,
            seed: 7,
            solvers: SolverKind::PAPER_SET.to_vec(),
        };
        let expected = run_sweep_with(&problem, &cfg, &RunnerOptions::with_jobs(0)).unwrap();
        assert_eq!(out, sweep_table(&expected).to_csv());
    }

    #[test]
    fn sweep_dataset_out_reruns_are_cache_hits() {
        let dir = temp_dir("sweep-dataset-store");
        let sweep_args = args(&[
            "sweep",
            "--dataset",
            "power-law:60:2:3",
            "--kmax",
            "2",
            "--trials",
            "2",
            "--out",
            dir.to_str().unwrap(),
        ]);
        let first = run_with_input(&sweep_args, "").unwrap();
        assert!(first.contains("saved to"), "{first}");
        let second = run_with_input(&sweep_args, "").unwrap();
        assert!(second.contains("cache hit"), "{second}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_dataset_respects_the_memory_budget() {
        // A 10k-node graph cannot fit in 1K of tracked bytes: typed
        // refusal naming the budget, not an OOM.
        let err = run_with_input(
            &args(&[
                "sweep",
                "--dataset",
                "power-law:10000:3:1",
                "--kmax",
                "1",
                "--mem-budget",
                "1K",
            ]),
            "",
        )
        .unwrap_err();
        assert!(err.contains("memory budget exceeded"), "{err}");
        // A generous cap sails through.
        let ok = run_with_input(
            &args(&[
                "sweep",
                "--dataset",
                "erdos:20:0.2:1",
                "--kmax",
                "1",
                "--trials",
                "1",
                "--mem-budget",
                "64M",
            ]),
            "",
        )
        .unwrap();
        assert!(ok.contains("G_ALL"), "{ok}");
    }

    #[test]
    fn sweep_dataset_excludes_edge_list_and_distributed_flags() {
        for (extra, flagged) in [
            (vec!["--source", "s"], "--source"),
            (vec!["--workers", "2"], "--workers"),
            (vec!["--listen", "127.0.0.1:0", "--token", "t"], "--listen"),
        ] {
            let mut a = args(&["sweep", "--dataset", "erdos:5:0.5:1", "--kmax", "1"]);
            a.extend(extra.iter().map(|s| s.to_string()));
            let err = run_with_input(&a, "").unwrap_err();
            assert!(err.contains(flagged), "{flagged}: {err}");
        }
        // --mem-budget is the streamed build's cap; it demands --dataset.
        let err = run_with_input(
            &args(&[
                "sweep",
                "--source",
                "s",
                "--kmax",
                "1",
                "--mem-budget",
                "1M",
            ]),
            FIG1,
        )
        .unwrap_err();
        assert!(err.contains("requires --dataset"), "{err}");
    }

    #[test]
    fn worker_flags_demand_a_connect_target() {
        let err = run(&args(&["worker", "--token", "t"])).unwrap_err();
        assert!(err.contains("--connect"), "{err}");
        let err = run(&args(&[
            "worker",
            "--connect",
            "example.invalid:1",
            "--token",
            "t",
            "--retries",
            "x",
        ]))
        .unwrap_err();
        assert!(err.contains("--retries"), "{err}");
        let err = run(&args(&["worker", "--connect", "host:1"])).unwrap_err();
        assert!(err.contains("--token"), "{err}");
    }

    #[test]
    fn usage_and_flag_spec_agree() {
        use std::collections::BTreeSet;
        let documented: BTreeSet<String> = USAGE
            .split_whitespace()
            .filter_map(|tok| tok.trim_start_matches(['[', '(']).strip_prefix("--"))
            .map(|tok| {
                tok.trim_end_matches(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                    .to_string()
            })
            .collect();
        let allowed: BTreeSet<String> = FLAG_SPEC
            .iter()
            .flat_map(|(_, flags)| flags.iter().map(|f| f.to_string()))
            .collect();
        assert_eq!(
            documented, allowed,
            "USAGE and FLAG_SPEC drifted apart (left: documented, right: allowed)"
        );
        // Every public command is both documented and gated (`worker`
        // is deliberately hidden and spec-free).
        for (command, _) in FLAG_SPEC {
            assert!(
                USAGE.contains(command),
                "command {command} missing from USAGE"
            );
        }
        for command in USAGE
            .lines()
            .next()
            .unwrap()
            .trim_start_matches("usage: fp <")
            .split(['|', '>'])
            .filter(|c| !c.trim().is_empty() && !c.contains('['))
        {
            assert!(
                FLAG_SPEC.iter().any(|(name, _)| *name == command),
                "command {command} has no flag spec"
            );
        }
    }

    /// Each documented flag actually parses: passing it with a
    /// syntactically valid value never trips the unknown-flag gate.
    #[test]
    fn every_documented_flag_passes_the_gate() {
        for (command, flags) in FLAG_SPEC {
            for flag in *flags {
                let parsed = parse_flags(&args(&[&format!("--{flag}"), "1"])).unwrap();
                reject_unknown_flags(command, &parsed)
                    .unwrap_or_else(|e| panic!("{command} --{flag}: {e}"));
            }
        }
    }

    /// A unique scratch directory (removed by each test on success;
    /// stragglers land under the OS temp dir).
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fp-cli-test-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sweep_out_persists_then_caches_then_reports_byte_identically() {
        let out_dir = temp_dir("store");
        let out_str = out_dir.to_str().unwrap();
        let sweep_args = args(&[
            "sweep", "--source", "s", "--kmax", "2", "--trials", "2", "--seed", "7", "--jobs", "2",
            "--out", out_str,
        ]);

        let first = run_with_input(&sweep_args, FIG1).unwrap();
        let (status, table) = first.split_once('\n').unwrap();
        assert!(status.contains("saved to"), "{status}");

        // Exactly one run directory, with the full file triple.
        let run_dirs: Vec<_> = std::fs::read_dir(&out_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(run_dirs.len(), 1, "{run_dirs:?}");
        let run_dir = &run_dirs[0];
        for file in ["manifest.json", "result.json", "result.csv"] {
            assert!(run_dir.join(file).exists(), "{file} missing");
        }

        // Identical command again: cache hit, identical table.
        let second = run_with_input(&sweep_args, FIG1).unwrap();
        let (status2, table2) = second.split_once('\n').unwrap();
        assert!(status2.contains("cache hit"), "{status2}");
        assert_eq!(table2, table, "cache hit must reproduce the table");

        // `report` re-renders the same bytes from disk alone.
        let report =
            run_with_input(&args(&["report", "--run", run_dir.to_str().unwrap()]), "").unwrap();
        assert_eq!(report, table);

        // CSV format matches the stored result.csv bytes.
        let report_csv = run_with_input(
            &args(&[
                "report",
                "--run",
                run_dir.to_str().unwrap(),
                "--format",
                "csv",
            ]),
            "",
        )
        .unwrap();
        assert_eq!(
            report_csv,
            std::fs::read_to_string(run_dir.join("result.csv")).unwrap()
        );

        // JSON format is valid JSON holding all seven series.
        let report_json = run_with_input(
            &args(&[
                "report",
                "--run",
                run_dir.to_str().unwrap(),
                "--format",
                "json",
            ]),
            "",
        )
        .unwrap();
        let parsed = fp_results::Json::parse(&report_json).unwrap();
        assert_eq!(
            parsed.expect("series").unwrap().as_array().unwrap().len(),
            7
        );

        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn sweep_out_csv_stays_machine_clean_and_distinct_sources_do_not_collide() {
        let out_dir = temp_dir("csv-clean");
        let out_str = out_dir.to_str().unwrap();
        // --format csv with --out must emit pure CSV (no status line).
        let csv = run_with_input(
            &args(&[
                "sweep", "--source", "s", "--kmax", "1", "--trials", "1", "--out", out_str,
                "--format", "csv",
            ]),
            FIG1,
        )
        .unwrap();
        assert!(csv.starts_with("k,G_ALL"), "status line leaked: {csv}");

        // Same edge structure + same source label, but the label bound
        // to a different node index: must be a fresh run, not a hit.
        let a = "s a\na b\na c\n"; // s = index 0
        let b = "x s\ns b\ns c\n"; // s = index 1, same structural edges
        let sweep = |input: &str| {
            run_with_input(
                &args(&[
                    "sweep", "--source", "s", "--kmax", "1", "--trials", "1", "--out", out_str,
                ]),
                input,
            )
            .unwrap()
        };
        assert!(sweep(a).starts_with("run "), "first run saves");
        let second = sweep(b);
        assert!(
            !second.contains("cache hit"),
            "different source index must not hit the cache: {second}"
        );
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn sweep_rejects_unknown_formats() {
        let e = run_with_input(
            &args(&[
                "sweep", "--source", "s", "--kmax", "1", "--trials", "1", "--format", "json",
            ]),
            FIG1,
        )
        .unwrap_err();
        assert!(e.contains("unknown --format"), "{e}");
    }

    #[test]
    fn sweep_is_deterministic_across_job_counts() {
        let one = run_with_input(
            &args(&[
                "sweep", "--source", "s", "--kmax", "3", "--trials", "4", "--seed", "5", "--jobs",
                "1", "--format", "csv",
            ]),
            FIG1,
        )
        .unwrap();
        let eight = run_with_input(
            &args(&[
                "sweep", "--source", "s", "--kmax", "3", "--trials", "4", "--seed", "5", "--jobs",
                "8", "--format", "csv",
            ]),
            FIG1,
        )
        .unwrap();
        assert_eq!(one, eight);
    }

    #[test]
    fn report_list_enumerates_stored_runs() {
        let out_dir = temp_dir("list");
        let out_str = out_dir.to_str().unwrap();
        // Two distinct sweeps → two runs under the same store.
        for seed in ["1", "2"] {
            run_with_input(
                &args(&[
                    "sweep", "--source", "s", "--kmax", "1", "--trials", "1", "--seed", seed,
                    "--out", out_str,
                ]),
                FIG1,
            )
            .unwrap();
        }
        let listing = run_with_input(&args(&["report", "--list", out_str]), "").unwrap();
        assert!(listing.starts_with("2 run(s) under "), "{listing}");
        assert!(listing.contains("edge-list"), "{listing}");
        // Header + separator-free Table: 1 header row + 2 run rows.
        let run_rows = listing.lines().filter(|l| l.contains("edge-list")).count();
        assert_eq!(run_rows, 2, "{listing}");

        // --list and --run together are refused.
        let e = run_with_input(&args(&["report", "--list", out_str, "--run", out_str]), "")
            .unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");

        // --format does not apply to --list (table only) — refuse it
        // rather than silently hand a script the wrong output shape.
        let e = run_with_input(&args(&["report", "--list", out_str, "--format", "csv"]), "")
            .unwrap_err();
        assert!(e.contains("--format applies to --run"), "{e}");

        // --jobs and --workers are different backends; together they
        // are refused instead of silently ignoring one.
        let e = run_with_input(
            &args(&[
                "sweep",
                "--source",
                "s",
                "--kmax",
                "1",
                "--jobs",
                "2",
                "--workers",
                "2",
            ]),
            FIG1,
        )
        .unwrap_err();
        assert!(e.contains("one or the other"), "{e}");

        // A missing directory is an error, not an empty table.
        let e =
            run_with_input(&args(&["report", "--list", "/nonexistent/fp-store"]), "").unwrap_err();
        assert!(e.contains("not a directory"), "{e}");
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn gc_evicts_lru_and_cache_hits_count_as_uses() {
        let out_dir = temp_dir("gc");
        let out_str = out_dir.to_str().unwrap();
        // Three distinct runs (different seeds).
        let sweep = |seed: &str| {
            args(&[
                "sweep", "--source", "s", "--kmax", "1", "--trials", "1", "--seed", seed, "--out",
                out_str,
            ])
        };
        for seed in ["1", "2", "3"] {
            run_with_input(&sweep(seed), FIG1).unwrap();
        }
        // Spread last-use times: seed 1 oldest, then 2, then 3.
        let store = RunStore::open(out_str).unwrap();
        let mut runs = store.list().unwrap();
        runs.sort_by_key(|r| r.manifest.config.seed);
        for (i, run) in runs.iter().enumerate() {
            let manifest = store.run_dir(&run.id).join("manifest.json");
            std::fs::OpenOptions::new()
                .append(true)
                .open(&manifest)
                .unwrap()
                .set_modified(
                    std::time::SystemTime::now()
                        - std::time::Duration::from_secs(3000 - 1000 * i as u64),
                )
                .unwrap();
        }
        // Re-running the oldest sweep is a cache hit — a *use* that
        // must move it out of the eviction line.
        let again = run_with_input(&sweep("1"), FIG1).unwrap();
        assert!(again.contains("cache hit"), "{again}");

        let report = run_with_input(&args(&["gc", "--out", out_str, "--keep", "2"]), "").unwrap();
        assert!(report.starts_with("evicted 1 of 3 run(s)"), "{report}");
        let left = store.list().unwrap();
        let seeds: Vec<u64> = left.iter().map(|r| r.manifest.config.seed).collect();
        assert!(seeds.contains(&1), "cache-hit run survives: {seeds:?}");
        assert!(
            !seeds.contains(&2),
            "untouched LRU run is evicted: {seeds:?}"
        );

        // --max-age path: both survivors were used within the hour, so
        // nothing is older than the cutoff; --keep 0 then empties it.
        let report =
            run_with_input(&args(&["gc", "--out", out_str, "--max-age", "3600"]), "").unwrap();
        assert!(report.starts_with("evicted 0 of 2"), "{report}");
        let report = run_with_input(&args(&["gc", "--out", out_str, "--keep", "0"]), "").unwrap();
        assert!(report.starts_with("evicted 2 of 2"), "{report}");
        assert!(store.list().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    /// Persist a synthetic run with the given G_ALL curve; returns its
    /// run directory.
    fn save_synthetic_run(store: &RunStore, seed: u64, curve: &[(usize, f64)]) -> String {
        save_synthetic_run_on(store, seed, curve, "00deadbeef00cafe", 1)
    }

    /// [`save_synthetic_run`] with an explicit dataset hash and trial
    /// count (for the comparability checks).
    fn save_synthetic_run_on(
        store: &RunStore,
        seed: u64,
        curve: &[(usize, f64)],
        edge_hash: &str,
        trials: usize,
    ) -> String {
        use fp_results::{SolverSeries, SweepResult};
        let config = SweepConfig {
            ks: curve.iter().map(|&(k, _)| k).collect(),
            trials,
            seed,
            solvers: vec![SolverKind::GreedyAll],
        };
        let dataset = DatasetFingerprint {
            name: "diff-test".into(),
            nodes: 7,
            edges: 9,
            source: "s".into(),
            edge_hash: edge_hash.into(),
        };
        let result = SweepResult {
            series: vec![SolverSeries {
                label: "G_ALL".into(),
                points: curve.to_vec(),
            }],
        };
        let manifest = RunManifest::new(config, dataset);
        store
            .save(&manifest, &result)
            .unwrap()
            .to_str()
            .unwrap()
            .to_string()
    }

    #[test]
    fn diff_flags_deltas_and_exits_nonzero_on_regression() {
        let out_dir = temp_dir("diff");
        let store = RunStore::open(out_dir.to_str().unwrap()).unwrap();
        let base = save_synthetic_run(&store, 1, &[(0, 0.0), (1, 0.5), (2, 0.9)]);
        // k=1 regresses by 0.1, k=2 improves by 0.05.
        let changed = save_synthetic_run(&store, 2, &[(0, 0.0), (1, 0.4), (2, 0.95)]);

        // A run against itself: no deltas, exit zero.
        let same = run_with_input(&args(&["diff", "--a", &base, "--b", &base]), "").unwrap();
        assert!(same.contains("0 delta(s)"), "{same}");
        assert!(same.contains("0 regression(s)"), "{same}");

        // Regression present: the command errors (non-zero exit) and
        // the report names the regressing budget.
        let report =
            run_with_input(&args(&["diff", "--a", &base, "--b", &changed]), "").unwrap_err();
        assert!(report.contains("2 delta(s)"), "{report}");
        assert!(report.contains("1 regression(s)"), "{report}");
        assert!(report.contains("G_ALL"), "{report}");
        assert!(report.contains("-0.100000"), "{report}");

        // The reverse direction only *improves* at k=1 ... but the k=2
        // drop is now the regression, so it still fails.
        let reverse =
            run_with_input(&args(&["diff", "--a", &changed, "--b", &base]), "").unwrap_err();
        assert!(reverse.contains("1 regression(s)"), "{reverse}");

        // Pure improvement exits zero but still lists the delta.
        let improved = save_synthetic_run(&store, 3, &[(0, 0.0), (1, 0.6), (2, 0.9)]);
        let up = run_with_input(&args(&["diff", "--a", &base, "--b", &improved]), "").unwrap();
        assert!(up.contains("1 delta(s)"), "{up}");
        assert!(up.contains("0 regression(s)"), "{up}");
        assert!(up.contains("+0.100000"), "{up}");

        // A generous epsilon swallows every delta: exit zero again.
        let lax = run_with_input(
            &args(&["diff", "--a", &base, "--b", &changed, "--epsilon", "1.0"]),
            "",
        )
        .unwrap();
        assert!(lax.contains("0 delta(s)"), "{lax}");
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn diff_rejects_incomparable_runs_and_bad_flags() {
        let out_dir = temp_dir("diff-bad");
        let out_str = out_dir.to_str().unwrap();
        run_with_input(
            &args(&[
                "sweep", "--source", "s", "--kmax", "1", "--trials", "1", "--out", out_str,
            ]),
            FIG1,
        )
        .unwrap();
        // Same store, different kmax: different budget axes.
        run_with_input(
            &args(&[
                "sweep", "--source", "s", "--kmax", "2", "--trials", "1", "--out", out_str,
            ]),
            FIG1,
        )
        .unwrap();
        let store = RunStore::open(out_str).unwrap();
        let mut runs = store.list().unwrap();
        runs.sort_by_key(|r| r.manifest.config.ks.len());
        let a = store.run_dir(&runs[0].id).to_str().unwrap().to_string();
        let b = store.run_dir(&runs[1].id).to_str().unwrap().to_string();
        let e = run_with_input(&args(&["diff", "--a", &a, "--b", &b]), "").unwrap_err();
        assert!(e.contains("not comparable"), "{e}");

        let e = run_with_input(&args(&["diff", "--a", &a]), "").unwrap_err();
        assert!(e.contains("--b"), "{e}");
        let e = run_with_input(
            &args(&["diff", "--a", &a, "--b", &b, "--epsilon", "soup"]),
            "",
        )
        .unwrap_err();
        assert!(e.contains("--epsilon"), "{e}");
        let e = run_with_input(
            &args(&["diff", "--a", &a, "--b", &b, "--epsilon", "-1"]),
            "",
        )
        .unwrap_err();
        assert!(e.contains("non-negative"), "{e}");
        let e =
            run_with_input(&args(&["diff", "--a", "/nonexistent/x", "--b", &b]), "").unwrap_err();
        assert!(e.contains("--a"), "{e}");

        // Same shape but a different dataset fingerprint: FR pairs
        // would be meaningless, so the tool must refuse.
        let curve = [(0usize, 0.0f64), (1, 0.5)];
        let ds_a = save_synthetic_run_on(&store, 50, &curve, "00deadbeef00cafe", 1);
        let ds_b = save_synthetic_run_on(&store, 51, &curve, "ffffffffffffffff", 1);
        let e = run_with_input(&args(&["diff", "--a", &ds_a, "--b", &ds_b]), "").unwrap_err();
        assert!(e.contains("not comparable"), "{e}");
        assert!(e.contains("hash"), "{e}");

        // Same dataset, different trial counts: different estimators.
        let tr_b = save_synthetic_run_on(&store, 52, &curve, "00deadbeef00cafe", 25);
        let e = run_with_input(&args(&["diff", "--a", &ds_a, "--b", &tr_b]), "").unwrap_err();
        assert!(e.contains("trial"), "{e}");
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn gc_rejects_bad_flag_combinations() {
        let e = run_with_input(&args(&["gc", "--out", "/tmp"]), "").unwrap_err();
        assert!(e.contains("--keep N or --max-age SECS"), "{e}");
        let e = run_with_input(
            &args(&["gc", "--out", "/tmp", "--keep", "1", "--max-age", "2"]),
            "",
        )
        .unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
        let e = run_with_input(&args(&["gc", "--keep", "1"]), "").unwrap_err();
        assert!(e.contains("--out"), "{e}");
        let e = run_with_input(&args(&["gc", "--out", "/tmp", "--keep", "soup"]), "").unwrap_err();
        assert!(e.contains("--keep"), "{e}");
        let e = run_with_input(
            &args(&["gc", "--out", "/nonexistent/fp-store", "--keep", "1"]),
            "",
        )
        .unwrap_err();
        assert!(e.contains("not a directory"), "{e}");
    }

    #[test]
    fn sweep_rejects_bad_numeric_flags() {
        for (flag, value) in [
            ("--kmax", "three"),
            ("--trials", "-1"),
            ("--seed", "0x10"),
            ("--jobs", "many"),
            ("--workers", "-3"),
        ] {
            let mut a = vec!["sweep", "--source", "s", "--kmax", "2"];
            if flag == "--kmax" {
                a = vec!["sweep", "--source", "s"];
            }
            a.push(flag);
            a.push(value);
            let e = run_with_input(&args(&a), FIG1).unwrap_err();
            assert!(e.contains(flag.trim_start_matches('-')), "{flag}: {e}");
        }
    }

    #[test]
    fn malformed_edge_lists_are_rejected_with_line_numbers() {
        for bad in ["only-one-token\n", "a b extra\n", "a a\n"] {
            let e =
                run_with_input(&args(&["sweep", "--source", "a", "--kmax", "1"]), bad).unwrap_err();
            assert!(e.contains("line 1"), "{bad:?}: {e}");
        }
        let e = run_with_input(
            &args(&["solve", "--source", "a", "--solver", "G_ALL", "--k", "1"]),
            "a b\nbroken\n",
        )
        .unwrap_err();
        assert!(e.contains("line 2"), "{e}");
    }

    #[test]
    fn report_error_paths() {
        // Missing the --run flag entirely.
        let e = run_with_input(&args(&["report"]), "").unwrap_err();
        assert!(e.contains("--run"), "{e}");

        // Pointing at a directory that holds no run.
        let empty = temp_dir("no-run");
        std::fs::create_dir_all(&empty).unwrap();
        let e =
            run_with_input(&args(&["report", "--run", empty.to_str().unwrap()]), "").unwrap_err();
        assert!(e.contains("manifest.json"), "{e}");
        let _ = std::fs::remove_dir_all(&empty);

        // A stored run, but a bogus format.
        let out_dir = temp_dir("bad-format");
        run_with_input(
            &args(&[
                "sweep",
                "--source",
                "s",
                "--kmax",
                "1",
                "--trials",
                "1",
                "--out",
                out_dir.to_str().unwrap(),
            ]),
            FIG1,
        )
        .unwrap();
        let run_dir = std::fs::read_dir(&out_dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap();
        let e = run_with_input(
            &args(&[
                "report",
                "--run",
                run_dir.path().to_str().unwrap(),
                "--format",
                "xml",
            ]),
            "",
        )
        .unwrap_err();
        assert!(e.contains("unknown --format"), "{e}");
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn run_requires_and_reads_the_input_file() {
        // Missing --input for a file-reading command.
        let e = run(&args(&["sweep", "--source", "s", "--kmax", "1"])).unwrap_err();
        assert!(e.contains("--input"), "{e}");
        // Unreadable --input path.
        let e = run(&args(&[
            "stats",
            "--input",
            "/nonexistent/fp-test-edges.txt",
        ]))
        .unwrap_err();
        assert!(e.contains("cannot read"), "{e}");
        // `report` does not require --input (it reads the run dir).
        let e = run(&args(&["report"])).unwrap_err();
        assert!(e.contains("--run"), "{e}");
    }

    #[test]
    fn solve_rejects_bad_k_and_seed() {
        let e = run_with_input(
            &args(&["solve", "--source", "s", "--solver", "G_ALL", "--k", "-2"]),
            FIG1,
        )
        .unwrap_err();
        assert!(e.contains("--k"), "{e}");
        let e = run_with_input(
            &args(&[
                "solve", "--source", "s", "--solver", "G_ALL", "--k", "1", "--seed", "soup",
            ]),
            FIG1,
        )
        .unwrap_err();
        assert!(e.contains("--seed"), "{e}");
        let e = run_with_input(
            &args(&[
                "solve", "--source", "s", "--solver", "G_ALL", "--k", "1", "--format", "yaml",
            ]),
            FIG1,
        )
        .unwrap_err();
        assert!(e.contains("unknown --format"), "{e}");
    }

    #[test]
    fn traced_sweep_dumps_spans_and_trace_summary_aggregates_them() {
        let dir = temp_dir("trace");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("sweep.trace.json");
        let trace_str = trace_path.to_str().unwrap();

        let out = run_with_input(
            &args(&[
                "sweep", "--source", "s", "--kmax", "2", "--trials", "2", "--trace", trace_str,
            ]),
            FIG1,
        )
        .unwrap();
        assert!(out.contains("span(s) written to"), "{out}");

        // The dump is valid JSON in the Chrome trace-event envelope and
        // holds engine spans from the sweep.
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let doc = fp_results::Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty(), "a sweep records spans");

        // `fp trace --summary` renders the per-name aggregate table.
        let summary = run_with_input(&args(&["trace", "--summary", trace_str]), "").unwrap();
        assert!(summary.contains("span(s) across"), "{summary}");
        assert!(summary.contains("sweep.cell.curve"), "{summary}");
        assert!(summary.contains("count"), "{summary}");

        // Tracing is a side channel: the traced table equals untraced.
        fp_obs::tracer().disable();
        let untraced = run_with_input(
            &args(&["sweep", "--source", "s", "--kmax", "2", "--trials", "2"]),
            FIG1,
        )
        .unwrap();
        let traced_table = out.split_once("written to").unwrap().1;
        let traced_table = traced_table.split_once('\n').unwrap().1;
        assert_eq!(traced_table, untraced);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_summary_rejects_missing_and_malformed_dumps() {
        let e = run_with_input(&args(&["trace"]), "").unwrap_err();
        assert!(e.contains("--summary"), "{e}");
        let e =
            run_with_input(&args(&["trace", "--summary", "/nonexistent/t.json"]), "").unwrap_err();
        assert!(e.contains("cannot read"), "{e}");

        let dir = temp_dir("trace-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let not_a_trace = dir.join("not-a-trace.json");
        std::fs::write(&not_a_trace, "{\"foo\": 1}").unwrap();
        let e = run_with_input(
            &args(&["trace", "--summary", not_a_trace.to_str().unwrap()]),
            "",
        )
        .unwrap_err();
        assert!(e.contains("traceEvents"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loadtest_rejects_bad_transport_and_check_combinations() {
        let e =
            run_with_input(&args(&["loadtest", "--transport", "carrier-pigeon"]), "").unwrap_err();
        assert!(e.contains("unknown transport"), "{e}");
        let e = run_with_input(&args(&["loadtest", "--tolerance", "0.5"]), "").unwrap_err();
        assert!(e.contains("--check"), "{e}");
        let e = run_with_input(
            &args(&[
                "loadtest",
                "--check",
                "/tmp/b.json",
                "--baseline",
                "/tmp/b.json",
            ]),
            "",
        )
        .unwrap_err();
        assert!(e.contains("one or the other"), "{e}");
        let e = run_with_input(
            &args(&["loadtest", "--check", "/tmp/b.json", "--tolerance", "soup"]),
            "",
        )
        .unwrap_err();
        assert!(e.contains("--tolerance"), "{e}");
    }

    #[test]
    fn generate_rejects_unknown_datasets_and_bad_scale() {
        let e = run_with_input(&args(&["generate", "--dataset", "facebook"]), "").unwrap_err();
        assert!(e.contains("unknown dataset"), "{e}");
        let e = run_with_input(
            &args(&["generate", "--dataset", "quote", "--scale", "big"]),
            "",
        )
        .unwrap_err();
        assert!(e.contains("--scale"), "{e}");
        let e = run_with_input(&args(&["generate"]), "").unwrap_err();
        assert!(e.contains("--dataset"), "{e}");
    }
}
