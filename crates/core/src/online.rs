//! [`OnlinePlacement`]: maintaining a placement under an edge stream.
//!
//! The batch pipeline answers "where do `k` filters go on *this*
//! graph?". Live graphs keep changing: subscriptions appear and lapse,
//! so the c-graph the placement was computed on drifts away underneath
//! it. This module is the dynamic-graph driver built on
//! [`ImpactEngine`]'s full mutation set (DESIGN.md §12):
//!
//! * every stream event is applied incrementally
//!   ([`ImpactEngine::apply`]), which keeps the live `Φ(A)` exact on
//!   the mutated graph without any re-solve;
//! * the driver tracks **drift** — the relative movement of `Φ(A)`
//!   since the placement was last (re)computed — and triggers a
//!   **repair round** only when drift crosses a threshold;
//! * a repair removes every placed filter and greedily re-inserts `k`
//!   of them on the warm engine. Because filter removal restores
//!   engine state exactly (the mutation identity laws), the repaired
//!   placement is bit-identical to a cold greedy solve on the current
//!   graph ([`greedy_rebuild`]) at a fraction of the cost.
//!
//! The threshold is the knob of the repair-cost-versus-quality trade:
//! `0.0` repairs on any Φ movement (quality of rebuild-per-mutation,
//! maximal repair work), `∞` never repairs (zero repair work, quality
//! decays with the stream). `fp bench` sweeps it into the `online`
//! section of `BENCH_baseline.json`; `fp online` replays a stream and
//! records the per-event trace.

use fp_graph::NodeId;
use fp_num::{Count, Wide128};
use fp_obs::Counter;
use fp_propagation::{CGraph, FilterSet, ImpactEngine, Mutation, MutationError, ObjectiveCache};
use std::collections::HashSet;
use std::sync::Arc;

/// Configuration for an [`OnlinePlacement`] driver.
#[derive(Clone, Copy, Debug)]
pub struct OnlineConfig {
    /// Filter budget maintained across the stream.
    pub k: usize,
    /// Repair when `|Φ_now − Φ_ref| / max(Φ_ref, 1)` exceeds this.
    /// `0.0` repairs on any movement; `f64::INFINITY` never repairs.
    pub drift_threshold: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            k: 8,
            drift_threshold: 0.05,
        }
    }
}

/// What one stream event did to the driver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventOutcome {
    /// Whether the mutation changed engine state.
    pub changed: bool,
    /// Drift after the event (relative to the last repair's Φ);
    /// `0.0` again if the event triggered a repair.
    pub drift: f64,
    /// Whether a repair round ran.
    pub repaired: bool,
    /// Greedy picks the repair spent (`0` when `repaired` is false).
    pub repair_picks: usize,
}

/// Running totals over a driver's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OnlineStats {
    /// Events that changed engine state.
    pub applied: usize,
    /// Repair rounds run.
    pub repairs: usize,
    /// Total greedy picks across all repairs (the stream's repair
    /// cost, in units of one incremental filter insertion).
    pub repair_picks: usize,
}

/// A filter placement kept live under a mutation stream.
pub struct OnlinePlacement {
    engine: ImpactEngine<'static, Wide128>,
    k: usize,
    drift_threshold: f64,
    phi_ref: f64,
    stats: OnlineStats,
    events_total: Arc<Counter>,
    repairs_total: Arc<Counter>,
}

impl OnlinePlacement {
    /// Take ownership of a c-graph and place the initial `k` filters
    /// (one cold greedy solve).
    pub fn new(cg: CGraph, cfg: OnlineConfig) -> Self {
        let n = cg.node_count();
        let mut driver = Self {
            engine: ImpactEngine::from_owned(cg, FilterSet::empty(n)),
            k: cfg.k,
            drift_threshold: cfg.drift_threshold,
            phi_ref: 0.0,
            stats: OnlineStats::default(),
            events_total: fp_obs::counter("fp_online_events_total"),
            repairs_total: fp_obs::counter("fp_online_repairs_total"),
        };
        greedy_fill(&mut driver.engine, cfg.k);
        driver.phi_ref = driver.engine.phi().to_f64();
        driver
    }

    /// The budget the driver maintains.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current placement (insertion order = greedy pick order of
    /// the last repair).
    pub fn placement(&self) -> &FilterSet {
        self.engine.filters()
    }

    /// The live engine (current graph, Φ, impacts).
    pub fn engine(&self) -> &ImpactEngine<'static, Wide128> {
        &self.engine
    }

    /// Relative Φ movement since the last repair.
    pub fn drift(&self) -> f64 {
        let now = self.engine.phi().to_f64();
        (now - self.phi_ref).abs() / self.phi_ref.max(1.0)
    }

    /// Running totals.
    pub fn stats(&self) -> OnlineStats {
        self.stats
    }

    /// Apply one stream event; repair if drift crosses the threshold.
    ///
    /// Errors propagate from [`ImpactEngine::apply`] and leave the
    /// driver untouched (a rejected mutation contributes no drift).
    pub fn apply_event(&mut self, m: Mutation) -> Result<EventOutcome, MutationError> {
        let outcome = self.engine.apply(m)?;
        self.events_total.inc();
        if outcome.changed {
            self.stats.applied += 1;
        }
        let drift = self.drift();
        if drift > self.drift_threshold {
            let picks = self.repair();
            return Ok(EventOutcome {
                changed: outcome.changed,
                drift: self.drift(),
                repaired: true,
                repair_picks: picks,
            });
        }
        Ok(EventOutcome {
            changed: outcome.changed,
            drift,
            repaired: false,
            repair_picks: 0,
        })
    }

    /// Force a repair round: drop every placed filter, greedily
    /// re-insert up to `k`, and re-anchor the drift reference. Returns
    /// the number of greedy picks spent. The result is bit-identical
    /// to [`greedy_rebuild`] on the current graph — filter removal
    /// restores engine state exactly, so the warm engine re-picks from
    /// the same empty-set state a cold solve would start from.
    pub fn repair(&mut self) -> usize {
        let span = fp_obs::span("online.repair");
        for v in self.engine.filters().nodes().to_vec() {
            self.engine
                .apply(Mutation::RemoveFilter(v))
                .expect("placed filters are in range");
        }
        let picks = greedy_fill(&mut self.engine, self.k);
        self.phi_ref = self.engine.phi().to_f64();
        self.stats.repairs += 1;
        self.stats.repair_picks += picks;
        self.repairs_total.inc();
        let _span = span.arg("picks", picks as i64);
        picks
    }

    /// The placement's Filter Ratio on the *current* graph, from a
    /// fresh objective cache (two O(|E|) passes — a checkpoint
    /// measurement, not something to call per event).
    pub fn quality(&self) -> f64 {
        let cg = self.engine.cgraph();
        let cache = ObjectiveCache::<Wide128>::new(cg);
        cache.filter_ratio(cg, self.engine.filters())
    }
}

/// Greedily insert filters until the budget is met or no candidate has
/// positive impact; returns the number of picks.
fn greedy_fill(engine: &mut ImpactEngine<'_, Wide128>, k: usize) -> usize {
    let mut picks = 0;
    while engine.filters().len() < k {
        match engine.best_candidate() {
            Some(v) => {
                engine.insert_filter(v);
                picks += 1;
            }
            None => break,
        }
    }
    picks
}

/// The rebuild-per-mutation baseline step: a cold greedy solve of
/// budget `k` on `cg`. Bit-identical to what a repair round on a warm
/// engine produces (the equivalence the tests pin).
pub fn greedy_rebuild(cg: &CGraph, k: usize) -> FilterSet {
    let mut engine = ImpactEngine::<Wide128>::new(cg, FilterSet::empty(cg.node_count()));
    greedy_fill(&mut engine, k);
    engine.into_filters()
}

/// A deterministic edge-mutation stream over `cg`.
///
/// Events alternate (seed-driven) between removing a present edge and
/// inserting an absent one. Inserted edges always run *forward* in
/// `cg`'s frozen topological order, so every prefix of the stream is
/// applicable: acyclicity is preserved by construction and the
/// engine's fast no-reorder path stays hot — the regime the paper's
/// pub-sub graphs live in, where subscriptions churn but the broker
/// hierarchy does not invert.
pub fn mutation_stream(cg: &CGraph, len: usize, seed: u64) -> Vec<Mutation> {
    // splitmix64: well-mixed, dependency-free, stable across platforms.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let n = cg.node_count();
    let mut edges: Vec<(u32, u32)> = cg
        .csr()
        .edges()
        .map(|(u, v)| (u.index() as u32, v.index() as u32))
        .collect();
    let mut present: HashSet<(u32, u32)> = edges.iter().copied().collect();
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let want_remove = next() % 2 == 0 && edges.len() > 1;
        if want_remove {
            let i = (next() % edges.len() as u64) as usize;
            let (u, v) = edges.swap_remove(i);
            present.remove(&(u, v));
            out.push(Mutation::RemoveEdge {
                from: NodeId::new(u as usize),
                to: NodeId::new(v as usize),
            });
            continue;
        }
        // Rejection-sample an absent forward pair; on a saturated
        // graph fall back to a removal so the stream never stalls.
        let mut inserted = false;
        for _ in 0..64 {
            let a = (next() % n as u64) as usize;
            let b = (next() % n as u64) as usize;
            if a == b {
                continue;
            }
            let (u, v) = if cg.topo_position(NodeId::new(a)) < cg.topo_position(NodeId::new(b)) {
                (a as u32, b as u32)
            } else {
                (b as u32, a as u32)
            };
            if present.insert((u, v)) {
                edges.push((u, v));
                out.push(Mutation::InsertEdge {
                    from: NodeId::new(u as usize),
                    to: NodeId::new(v as usize),
                });
                inserted = true;
                break;
            }
        }
        if !inserted {
            let i = (next() % edges.len() as u64) as usize;
            let (u, v) = edges.swap_remove(i);
            present.remove(&(u, v));
            out.push(Mutation::RemoveEdge {
                from: NodeId::new(u as usize),
                to: NodeId::new(v as usize),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use fp_graph::DiGraph;

    fn layered(levels: usize, per_level: usize) -> CGraph {
        // Source fans into a small complete-bipartite layer stack —
        // enough redundancy that every budget has positive impact.
        let n = 1 + levels * per_level;
        let mut pairs = Vec::new();
        for t in 1..=per_level {
            pairs.push((0, t));
        }
        for level in 1..levels {
            for a in 0..per_level {
                for b in 0..per_level {
                    pairs.push((1 + (level - 1) * per_level + a, 1 + level * per_level + b));
                }
            }
        }
        let g = DiGraph::from_pairs(n, pairs).unwrap();
        CGraph::new(&g, NodeId::new(0)).unwrap()
    }

    #[test]
    fn streams_are_deterministic_and_applicable() {
        let cg = layered(4, 3);
        let a = mutation_stream(&cg, 60, 7);
        let b = mutation_stream(&cg, 60, 7);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(
            mutation_stream(&cg, 60, 8),
            a,
            "different seed, different stream"
        );
        let mut engine = ImpactEngine::<Wide128>::from_owned(cg, FilterSet::empty(13));
        for (i, &m) in a.iter().enumerate() {
            engine.apply(m).unwrap_or_else(|e| panic!("event {i}: {e}"));
        }
    }

    #[test]
    fn repair_matches_a_cold_rebuild_exactly() {
        let cg = layered(4, 3);
        let stream = mutation_stream(&cg, 40, 11);
        let mut driver = OnlinePlacement::new(
            cg,
            OnlineConfig {
                k: 3,
                drift_threshold: f64::INFINITY,
            },
        );
        for &m in &stream {
            driver.apply_event(m).unwrap();
        }
        driver.repair();
        let cold = greedy_rebuild(driver.engine().cgraph(), 3);
        assert_eq!(driver.placement().nodes(), cold.nodes());
        // And the warm engine's Φ matches a fresh Problem's view.
        let p = Problem::from_cgraph(driver.engine().cgraph().clone());
        assert_eq!(
            driver.quality().to_bits(),
            p.filter_ratio(driver.placement()).to_bits()
        );
    }

    #[test]
    fn zero_threshold_repairs_track_every_change() {
        let cg = layered(3, 3);
        let stream = mutation_stream(&cg, 25, 3);
        let mut driver = OnlinePlacement::new(
            cg,
            OnlineConfig {
                k: 2,
                drift_threshold: 0.0,
            },
        );
        for &m in &stream {
            let out = driver.apply_event(m).unwrap();
            if out.repaired {
                let cold = greedy_rebuild(driver.engine().cgraph(), 2);
                assert_eq!(driver.placement().nodes(), cold.nodes());
            }
        }
        assert!(driver.stats().repairs > 0, "zero threshold must repair");
    }

    #[test]
    fn infinite_threshold_never_repairs() {
        let cg = layered(3, 3);
        let stream = mutation_stream(&cg, 25, 5);
        let mut driver = OnlinePlacement::new(
            cg,
            OnlineConfig {
                k: 2,
                drift_threshold: f64::INFINITY,
            },
        );
        let initial = driver.placement().nodes().to_vec();
        for &m in &stream {
            let out = driver.apply_event(m).unwrap();
            assert!(!out.repaired);
        }
        assert_eq!(driver.stats().repairs, 0);
        assert_eq!(driver.placement().nodes(), initial, "placement pinned");
    }
}
