//! [`Problem`]: the one-stop entry point.

use fp_algorithms::{acyclic, solve_ladder_with, SolverKind};
use fp_graph::{DiGraph, GraphError, NodeId};
use fp_num::Wide128;
use fp_propagation::{CGraph, FilterSet, ObjectiveCache};

/// A Filter Placement instance: a c-graph plus the cached objective
/// denominators, ready to be solved by any [`SolverKind`].
///
/// Cyclic inputs are handled the way the paper prescribes (§4.3): a
/// maximal connected acyclic subgraph rooted at the source is extracted
/// first; [`Problem::was_cyclic`] reports whether that happened.
///
/// All internal arithmetic uses [`Wide128`] (saturating `u128`) — the
/// cross-validation test suite pins its agreement with exact
/// [`fp_num::BigCount`] on every dataset in the evaluation.
pub struct Problem {
    cg: CGraph,
    cache: ObjectiveCache<Wide128>,
    was_cyclic: bool,
}

impl Problem {
    /// Build from any directed graph and a source node.
    pub fn new(g: &DiGraph, source: NodeId) -> Result<Self, GraphError> {
        if source.index() >= g.node_count() {
            return Err(GraphError::NodeOutOfRange {
                node: source,
                node_count: g.node_count(),
            });
        }
        let (cg, was_cyclic) = match CGraph::new(g, source) {
            Ok(cg) => (cg, false),
            Err(GraphError::CycleDetected { .. }) => {
                let dag = acyclic::acyclic_naive(g, source);
                (CGraph::new(&dag, source)?, true)
            }
            Err(e) => return Err(e),
        };
        let cache = ObjectiveCache::new(&cg);
        Ok(Self {
            cg,
            cache,
            was_cyclic,
        })
    }

    /// Wrap an already-frozen (hence acyclic) c-graph directly.
    ///
    /// This is how mutation paths rebuild a `Problem` after editing a
    /// graph through [`fp_propagation::ImpactEngine`] or
    /// [`CGraph::insert_edge`]/[`CGraph::remove_edge`]: the mutated
    /// c-graph is acyclic by construction, so no Acyclic extraction
    /// runs and `was_cyclic` is `false`.
    pub fn from_cgraph(cg: CGraph) -> Self {
        let cache = ObjectiveCache::new(&cg);
        Self {
            cg,
            cache,
            was_cyclic: false,
        }
    }

    /// The (acyclic) communication graph being solved.
    pub fn cgraph(&self) -> &CGraph {
        &self.cg
    }

    /// Whether the input contained cycles and went through Acyclic.
    pub fn was_cyclic(&self) -> bool {
        self.was_cyclic
    }

    /// Run a solver with budget `k`.
    pub fn solve(&self, kind: SolverKind, k: usize) -> FilterSet {
        self.solve_seeded(kind, k, 0)
    }

    /// Run a solver with budget `k` and an explicit seed (only the
    /// randomized baselines depend on it). A thin wrapper over the
    /// session API: one session advanced to `k`.
    pub fn solve_seeded(&self, kind: SolverKind, k: usize, seed: u64) -> FilterSet {
        kind.build::<Wide128>().place(&self.cg, k, seed)
    }

    /// Solve a solver's whole **k-ladder** in one run: for each budget
    /// in `ks`, the placement and its FR, computed by walking a single
    /// [`fp_algorithms::SolverSession`] up the budget axis.
    ///
    /// The paper's greedy algorithms are anytime — the placement at
    /// every `k ≤ k_max` is a prefix of one run — so the whole curve
    /// costs one solve at `k_max` (O(solve(k_max)), not O(Σₖ solve(k)))
    /// and each FR readout comes from the session's live `Φ` instead of
    /// a fresh forward pass. Results come back in `ks`'s order
    /// (duplicates included; any order is accepted — budgets are walked
    /// ascending internally). Placements and FRs are bit-identical to
    /// per-k [`Problem::solve_seeded`] + [`Problem::filter_ratio`] —
    /// the ladder-equivalence proptests pin this for every solver.
    pub fn solve_ladder(
        &self,
        kind: SolverKind,
        ks: &[usize],
        seed: u64,
    ) -> Vec<(usize, FilterSet, f64)> {
        let solver = kind.build::<Wide128>();
        solve_ladder_with(solver.as_ref(), &self.cg, ks, seed)
    }

    /// Run a solver on the full-recompute *oracle* path (fresh
    /// `impacts()`/`phi_total` sweeps per round instead of the
    /// incremental `ImpactEngine`). Placements are bit-identical to
    /// [`Problem::solve`] — `tests/engine_equivalence.rs` holds every
    /// solver to that on random DAGs, which is what keeps stored run
    /// directories byte-stable across the engine rewrite.
    pub fn solve_oracle(&self, kind: SolverKind, k: usize) -> FilterSet {
        self.solve_oracle_seeded(kind, k, 0)
    }

    /// [`Problem::solve_oracle`] with an explicit seed.
    pub fn solve_oracle_seeded(&self, kind: SolverKind, k: usize, seed: u64) -> FilterSet {
        kind.place_oracle::<Wide128>(&self.cg, k, seed)
    }

    /// `F(A)` for a placement.
    pub fn f_value(&self, filters: &FilterSet) -> Wide128 {
        self.cache.f_of(&self.cg, filters)
    }

    /// The paper's Filter Ratio `FR(A) = F(A)/F(V)` (1.0 = all
    /// removable redundancy removed).
    pub fn filter_ratio(&self, filters: &FilterSet) -> f64 {
        self.cache.filter_ratio(&self.cg, filters)
    }

    /// `Φ(∅, V)`: total receptions with no filters.
    pub fn phi_empty(&self) -> &Wide128 {
        self.cache.phi_empty()
    }

    /// `F(V)`: the maximum removable redundancy.
    pub fn f_all(&self) -> &Wide128 {
        self.cache.f_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> DiGraph {
        DiGraph::from_pairs(
            7,
            [
                (0, 1),
                (0, 2),
                (1, 3),
                (1, 4),
                (2, 4),
                (2, 5),
                (3, 6),
                (4, 6),
                (5, 6),
            ],
        )
        .unwrap()
    }

    #[test]
    fn solves_the_figure1_instance() {
        let p = Problem::new(&figure1(), NodeId::new(0)).unwrap();
        assert!(!p.was_cyclic());
        let placement = p.solve(SolverKind::GreedyAll, 2);
        assert_eq!(p.filter_ratio(&placement), 1.0);
        assert!(p.f_value(&placement) == *p.f_all());
    }

    #[test]
    fn cyclic_inputs_go_through_acyclic_extraction() {
        // Figure 1 plus a cycle-closing edge w → s.
        let mut g = figure1();
        g.add_edge(NodeId::new(6), NodeId::new(0));
        let p = Problem::new(&g, NodeId::new(0)).unwrap();
        assert!(p.was_cyclic());
        // Still solvable, and z2 is still the best single filter.
        let placement = p.solve(SolverKind::GreedyAll, 1);
        assert_eq!(placement.nodes(), &[NodeId::new(4)]);
    }

    #[test]
    fn oracle_path_places_identically() {
        let p = Problem::new(&figure1(), NodeId::new(0)).unwrap();
        for kind in SolverKind::PAPER_SET {
            for k in 0..=3 {
                assert_eq!(
                    p.solve(kind, k).nodes(),
                    p.solve_oracle(kind, k).nodes(),
                    "{kind:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn from_cgraph_matches_new_on_acyclic_inputs() {
        let g = figure1();
        let via_new = Problem::new(&g, NodeId::new(0)).unwrap();
        let cg = CGraph::new(&g, NodeId::new(0)).unwrap();
        let via_cg = Problem::from_cgraph(cg);
        assert!(!via_cg.was_cyclic());
        assert!(via_cg.phi_empty() == via_new.phi_empty());
        assert!(via_cg.f_all() == via_new.f_all());
        let a = via_new.solve(SolverKind::GreedyAll, 2);
        let b = via_cg.solve(SolverKind::GreedyAll, 2);
        assert_eq!(a.nodes(), b.nodes());
    }

    #[test]
    fn rejects_bad_sources() {
        assert!(Problem::new(&figure1(), NodeId::new(99)).is_err());
    }

    #[test]
    fn ladder_matches_per_k_solves_bit_for_bit() {
        let p = Problem::new(&figure1(), NodeId::new(0)).unwrap();
        let ks: Vec<usize> = (0..=4).collect();
        for kind in SolverKind::PAPER_SET {
            let ladder = p.solve_ladder(kind, &ks, 11);
            assert_eq!(ladder.len(), ks.len());
            for (k, placement, fr) in ladder {
                let one_shot = p.solve_seeded(kind, k, 11);
                assert_eq!(placement.nodes(), one_shot.nodes(), "{kind:?} k={k}");
                assert_eq!(
                    fr.to_bits(),
                    p.filter_ratio(&one_shot).to_bits(),
                    "{kind:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn ladder_accepts_unsorted_budgets_with_duplicates() {
        let p = Problem::new(&figure1(), NodeId::new(0)).unwrap();
        let ladder = p.solve_ladder(SolverKind::GreedyAll, &[3, 0, 3, 1], 0);
        let ks: Vec<usize> = ladder.iter().map(|&(k, _, _)| k).collect();
        assert_eq!(ks, vec![3, 0, 3, 1]);
        assert!(ladder[1].1.is_empty());
        assert_eq!(ladder[0].1.nodes(), ladder[2].1.nodes());
        assert_eq!(ladder[3].1.nodes(), &[NodeId::new(4)]);
    }

    #[test]
    fn random_solvers_honor_seeds() {
        let p = Problem::new(&figure1(), NodeId::new(0)).unwrap();
        let a = p.solve_seeded(SolverKind::RandK, 2, 11);
        let b = p.solve_seeded(SolverKind::RandK, 2, 11);
        assert_eq!(a.nodes(), b.nodes());
    }
}
