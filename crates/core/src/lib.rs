//! # filter-placement
//!
//! A from-scratch Rust reproduction of **"The Filter-Placement Problem
//! and its Application to Minimizing Information Multiplicity"**
//! (Erdős, Ishakian, Lapets, Terzi, Bestavros — PVLDB 5(5), 2012).
//!
//! In information networks, nodes blindly relay every copy of an item
//! they receive; the same item arrives over many paths, and redundancy
//! ("information multiplicity") compounds exponentially. The paper asks:
//! given a budget of `k` deduplicating *filters*, where should they go
//! to remove the most redundancy? This crate is the full system:
//!
//! * [`graph`] — the directed-graph substrate (adjacency/CSR,
//!   traversals, topological order, SCCs, trees, I/O);
//! * [`num`] — counting arithmetic (path counts overflow `u64` fast);
//! * [`propagation`] — the propagation model, objective `F`, impacts,
//!   simulators, and the probabilistic / multi-item / leaky-filter
//!   extensions;
//! * [`algorithms`] — Greedy_All/Max/1/L, randomized baselines, the
//!   exact tree DP, brute force, Acyclic extraction, and the
//!   NP-hardness constructions;
//! * [`datasets`] — the paper's synthetic family plus generators that
//!   stand in for its three real traces;
//! * [`results`] — persistent experiment results: the JSON model, the
//!   content-addressed on-disk run store behind `fp sweep --out` /
//!   `fp report`, and the work-stealing parallel sweep runner;
//! * [`Problem`] / [`experiment`] / [`report`] — a one-stop API tying
//!   those together, the FR-sweep runner behind every figure, and
//!   plain-text table/CSV rendering.
//!
//! ## Quickstart
//!
//! ```
//! use fp_core::prelude::*;
//!
//! // The paper's Figure-1 news network: s → {x,y}; x → {z1,z2};
//! // y → {z2,z3}; z1,z2,z3 → w.
//! let g = DiGraph::from_pairs(
//!     7,
//!     [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 6), (4, 6), (5, 6)],
//! )
//! .unwrap();
//! let problem = Problem::new(&g, NodeId::new(0)).unwrap();
//!
//! // One filter, chosen by the (1 − 1/e)-approximate Greedy_All.
//! let placement = problem.solve(SolverKind::GreedyAll, 1);
//! assert_eq!(placement.nodes(), &[NodeId::new(4)]); // z2
//! assert_eq!(problem.filter_ratio(&placement), 1.0); // perfect
//! ```

pub mod cli;
pub mod experiment;
pub mod loadtest;
pub mod online;
mod problem;
pub mod registry;
pub mod report;
pub mod serve;
pub mod worker;

pub use fp_algorithms as algorithms;
pub use fp_datasets as datasets;
pub use fp_graph as graph;
pub use fp_num as num;
pub use fp_propagation as propagation;
pub use fp_results as results;
pub use fp_scale as scale;

pub use problem::Problem;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::experiment::{run_sweep, run_sweep_with, SweepConfig, SweepResult};
    pub use crate::online::{OnlineConfig, OnlinePlacement};
    pub use crate::problem::Problem;
    pub use crate::report::Table;
    pub use fp_algorithms::{Solver, SolverKind, SolverSession};
    pub use fp_graph::{DiGraph, NodeId};
    pub use fp_num::{BigCount, Count, Wide128};
    pub use fp_propagation::{CGraph, FilterSet};
    pub use fp_results::{DatasetFingerprint, RunManifest, RunStore, RunnerOptions};
}
