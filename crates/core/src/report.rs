//! Plain-text table and CSV rendering for figure/table regeneration.
//!
//! The benchmark harnesses print the same rows/series the paper's
//! figures plot; this module keeps the formatting in one place.

use crate::experiment::SweepResult;

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new(headers: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: impl IntoIterator<Item = impl Into<String>>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (no quoting — callers only emit plain cells).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Render an FR sweep as the paper's figures tabulate it: one row per
/// `k`, one column per algorithm.
pub fn sweep_table(result: &SweepResult) -> Table {
    let mut headers = vec!["k".to_string()];
    headers.extend(result.series.iter().map(|s| s.label.clone()));
    let mut table = Table::new(headers);
    if let Some(first) = result.series.first() {
        for (i, &(k, _)) in first.points.iter().enumerate() {
            let mut row = vec![k.to_string()];
            for s in &result.series {
                row.push(format!("{:.4}", s.points[i].1));
            }
            table.row(row);
        }
    }
    table
}

/// Render degree-CDF points `(degree, cumulative probability)`.
pub fn cdf_table(points: &[(usize, f64)]) -> Table {
    let mut table = Table::new(["in-degree", "P[deg <= d]"]);
    for &(d, p) in points {
        table.row([d.to_string(), format!("{p:.4}")]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{SolverSeries, SweepResult};

    #[test]
    fn table_alignment_and_csv() {
        let mut t = Table::new(["k", "G_ALL"]);
        t.row(["0", "0.0000"]).row(["10", "0.9876"]);
        let text = t.to_string();
        assert!(text.contains("G_ALL"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + rule + 2 rows");
        assert_eq!(t.to_csv(), "k,G_ALL\n0,0.0000\n10,0.9876\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn sweep_table_pivots_series() {
        let res = SweepResult {
            series: vec![
                SolverSeries {
                    label: "G_ALL".into(),
                    points: vec![(0, 0.0), (5, 1.0)],
                },
                SolverSeries {
                    label: "Rand_K".into(),
                    points: vec![(0, 0.0), (5, 0.25)],
                },
            ],
        };
        let t = sweep_table(&res);
        let csv = t.to_csv();
        assert!(csv.starts_with("k,G_ALL,Rand_K\n"));
        assert!(csv.contains("5,1.0000,0.2500"));
    }

    #[test]
    fn cdf_table_rounds() {
        let t = cdf_table(&[(0, 0.5), (3, 1.0)]);
        assert!(t.to_csv().contains("3,1.0000"));
    }

    #[test]
    fn sweep_csv_renderers_agree_byte_for_byte() {
        // The store writes result.csv via fp-results; the CLI renders
        // via this module. They must emit identical bytes.
        let res = SweepResult {
            series: vec![
                SolverSeries {
                    label: "G_ALL".into(),
                    points: vec![(0, 0.0), (3, 1.0 / 3.0), (5, 1.0)],
                },
                SolverSeries {
                    label: "Rand_K".into(),
                    points: vec![(0, 0.0), (3, 0.1234), (5, 0.25)],
                },
            ],
        };
        assert_eq!(sweep_table(&res).to_csv(), fp_results::csv::sweep_csv(&res));
    }
}
