//! The FR-sweep experiment runner behind Figures 5, 7, 8 and 9.
//!
//! For each solver and each budget `k`, measure `FR` on the given
//! c-graph. Deterministic solvers are *prefix-stable* (their choice at
//! budget `k` is the first `k` choices of a single max-budget run), so
//! one placement run serves the whole curve. Randomized baselines are
//! re-run `trials` times per `k` (the paper uses 25) and averaged.
//! Solvers run in parallel on scoped threads.

use crate::Problem;
use fp_algorithms::SolverKind;
use fp_propagation::FilterSet;
use serde::{Deserialize, Serialize};

/// Configuration of one FR sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Budgets to evaluate (x-axis of the figures).
    pub ks: Vec<usize>,
    /// Trials per budget for randomized solvers (paper: 25).
    pub trials: usize,
    /// Base seed for the randomized solvers.
    pub seed: u64,
    /// Solvers to compare.
    pub solvers: Vec<SolverKind>,
}

impl SweepConfig {
    /// The paper's seven-algorithm comparison over `0..=k_max`
    /// (step chosen to keep ~11 points on the curve).
    pub fn paper(k_max: usize) -> Self {
        let step = (k_max / 10).max(1);
        let mut ks: Vec<usize> = (0..=k_max).step_by(step).collect();
        if *ks.last().unwrap() != k_max {
            ks.push(k_max);
        }
        Self {
            ks,
            trials: 25,
            seed: 0xF1157E5,
            solvers: SolverKind::PAPER_SET.to_vec(),
        }
    }
}

/// One solver's FR curve.
#[derive(Clone, Debug, Serialize)]
pub struct SolverSeries {
    /// Legend label (e.g. `"G_ALL"`).
    pub label: String,
    /// `(k, mean FR)` points.
    pub points: Vec<(usize, f64)>,
}

/// The result of [`run_sweep`].
#[derive(Clone, Debug, Serialize)]
pub struct SweepResult {
    /// One series per solver, in configuration order.
    pub series: Vec<SolverSeries>,
}

impl SweepResult {
    /// The series for a given label, if present.
    pub fn series_for(&self, label: &str) -> Option<&SolverSeries> {
        self.series.iter().find(|s| s.label == label)
    }
}

fn sweep_one(problem: &Problem, kind: SolverKind, cfg: &SweepConfig) -> SolverSeries {
    let points = if kind.is_randomized() {
        cfg.ks
            .iter()
            .map(|&k| {
                let mut acc = 0.0;
                for t in 0..cfg.trials.max(1) {
                    let filters = problem.solve_seeded(kind, k, cfg.seed.wrapping_add(t as u64));
                    acc += problem.filter_ratio(&filters);
                }
                (k, acc / cfg.trials.max(1) as f64)
            })
            .collect()
    } else {
        // Prefix-stable: run once at the maximum budget, truncate.
        let k_max = cfg.ks.iter().copied().max().unwrap_or(0);
        let full: FilterSet = problem.solve(kind, k_max);
        cfg.ks
            .iter()
            .map(|&k| (k, problem.filter_ratio(&full.truncated(k))))
            .collect()
    };
    SolverSeries {
        label: kind.label().to_string(),
        points,
    }
}

/// Run the sweep, one scoped thread per solver.
pub fn run_sweep(problem: &Problem, cfg: &SweepConfig) -> SweepResult {
    let series = std::thread::scope(|scope| {
        let handles: Vec<_> = cfg
            .solvers
            .iter()
            .map(|&kind| scope.spawn(move || sweep_one(problem, kind, cfg)))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("solver thread panicked"))
            .collect()
    });
    SweepResult { series }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_graph::{DiGraph, NodeId};

    fn lattice_problem() -> Problem {
        let mut pairs = vec![(0usize, 1usize), (0, 2), (0, 3)];
        for a in 1..=3 {
            for b in 4..=6 {
                pairs.push((a, b));
            }
        }
        for a in 4..=6 {
            for b in 7..=9 {
                pairs.push((a, b));
            }
        }
        let g = DiGraph::from_pairs(10, pairs).unwrap();
        Problem::new(&g, NodeId::new(0)).unwrap()
    }

    #[test]
    fn sweep_produces_monotone_curves_for_greedy() {
        let p = lattice_problem();
        let cfg = SweepConfig {
            ks: (0..=6).collect(),
            trials: 5,
            seed: 1,
            solvers: vec![
                SolverKind::GreedyAll,
                SolverKind::GreedyMax,
                SolverKind::RandK,
            ],
        };
        let res = run_sweep(&p, &cfg);
        assert_eq!(res.series.len(), 3);
        let ga = res.series_for("G_ALL").unwrap();
        assert_eq!(ga.points.first().unwrap().1, 0.0, "k=0 ⇒ FR=0");
        for w in ga.points.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12, "greedy FR must be monotone in k");
        }
        for s in &res.series {
            for &(_, fr) in &s.points {
                assert!((0.0..=1.0 + 1e-12).contains(&fr), "{}: fr={fr}", s.label);
            }
        }
    }

    #[test]
    fn greedy_all_dominates_random_k_on_average() {
        let p = lattice_problem();
        let cfg = SweepConfig {
            ks: vec![2, 4],
            trials: 25,
            seed: 3,
            solvers: vec![SolverKind::GreedyAll, SolverKind::RandK],
        };
        let res = run_sweep(&p, &cfg);
        let ga = res.series_for("G_ALL").unwrap();
        let rk = res.series_for("Rand_K").unwrap();
        for (a, b) in ga.points.iter().zip(&rk.points) {
            assert!(
                a.1 >= b.1 - 0.05,
                "greedy should not lose to random: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn paper_config_has_the_seven_solvers() {
        let cfg = SweepConfig::paper(50);
        assert_eq!(cfg.solvers.len(), 7);
        assert_eq!(cfg.trials, 25);
        assert_eq!(*cfg.ks.last().unwrap(), 50);
        assert_eq!(cfg.ks[0], 0);
    }
}
