//! The FR-sweep experiment runner behind Figures 5, 7, 8 and 9.
//!
//! For each solver and each budget `k`, measure `FR` on the given
//! c-graph. Deterministic solvers are *anytime* (their choice at
//! budget `k` is the first `k` choices of a single max-budget run), so
//! one [`fp_algorithms::SolverSession`] walked up the budget axis
//! serves the whole curve — one engine, zero re-solves, FR read from
//! live state ([`Problem::solve_ladder`]). Randomized baselines are
//! re-run `trials` times per `k` (the paper uses 25) and averaged;
//! their solvers are stateless, with the trial seed entering at
//! session start.
//!
//! The heavy lifting lives in [`fp_results`]: the sweep is decomposed
//! into (solver, `k`, trial) cells and scheduled across a
//! work-stealing pool ([`fp_results::runner`]), which keeps every core
//! busy — the seed's one-thread-per-solver scheme left cores idle once
//! the fast solvers finished. This module contributes the solver
//! arithmetic by implementing [`SweepBackend`] for [`Problem`], and
//! re-exports the config/result types that moved to `fp-results` (so
//! they can be serialized and stored) under their old paths.

use crate::Problem;
use fp_algorithms::SolverKind;
use fp_results::runner::RunnerOptions;
use fp_results::sweep::{run_sweep_cells, SweepBackend};

pub use fp_results::model::{SolverSeries, SweepConfig, SweepResult};

impl SweepBackend for Problem {
    fn randomized_fr(&self, solver: SolverKind, k: usize, seed: u64) -> f64 {
        self.filter_ratio(&self.solve_seeded(solver, k, seed))
    }

    fn deterministic_curve(&self, solver: SolverKind, ks: &[usize]) -> Vec<(usize, f64)> {
        // Anytime: one session walks the whole budget axis — a single
        // engine, zero re-solves, FR read from the session's live Φ at
        // each rung (no per-k `ObjectiveCache::f_of` pass).
        self.solve_ladder(solver, ks, 0)
            .into_iter()
            .map(|(k, _, fr)| (k, fr))
            .collect()
    }
}

/// Run the sweep with explicit scheduling options.
///
/// Returns `None` iff `opts.deadline` expired before the sweep
/// finished (never when no deadline is set). For a fixed config the
/// result is bit-identical for every `opts.jobs`.
pub fn run_sweep_with(
    problem: &Problem,
    cfg: &SweepConfig,
    opts: &RunnerOptions,
) -> Option<SweepResult> {
    run_sweep_cells(problem, cfg, opts)
}

/// Run the sweep on one worker per core, no deadline.
pub fn run_sweep(problem: &Problem, cfg: &SweepConfig) -> SweepResult {
    run_sweep_with(problem, cfg, &RunnerOptions::default())
        .expect("no deadline, so the sweep cannot time out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_graph::{DiGraph, NodeId};
    use std::time::{Duration, Instant};

    fn lattice_problem() -> Problem {
        let mut pairs = vec![(0usize, 1usize), (0, 2), (0, 3)];
        for a in 1..=3 {
            for b in 4..=6 {
                pairs.push((a, b));
            }
        }
        for a in 4..=6 {
            for b in 7..=9 {
                pairs.push((a, b));
            }
        }
        let g = DiGraph::from_pairs(10, pairs).unwrap();
        Problem::new(&g, NodeId::new(0)).unwrap()
    }

    #[test]
    fn sweep_produces_monotone_curves_for_greedy() {
        let p = lattice_problem();
        let cfg = SweepConfig {
            ks: (0..=6).collect(),
            trials: 5,
            seed: 1,
            solvers: vec![
                SolverKind::GreedyAll,
                SolverKind::GreedyMax,
                SolverKind::RandK,
            ],
        };
        let res = run_sweep(&p, &cfg);
        assert_eq!(res.series.len(), 3);
        let ga = res.series_for("G_ALL").unwrap();
        assert_eq!(ga.points.first().unwrap().1, 0.0, "k=0 ⇒ FR=0");
        for w in ga.points.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12, "greedy FR must be monotone in k");
        }
        for s in &res.series {
            for &(_, fr) in &s.points {
                assert!((0.0..=1.0 + 1e-12).contains(&fr), "{}: fr={fr}", s.label);
            }
        }
    }

    #[test]
    fn greedy_all_dominates_random_k_on_average() {
        let p = lattice_problem();
        let cfg = SweepConfig {
            ks: vec![2, 4],
            trials: 25,
            seed: 3,
            solvers: vec![SolverKind::GreedyAll, SolverKind::RandK],
        };
        let res = run_sweep(&p, &cfg);
        let ga = res.series_for("G_ALL").unwrap();
        let rk = res.series_for("Rand_K").unwrap();
        for (a, b) in ga.points.iter().zip(&rk.points) {
            assert!(
                a.1 >= b.1 - 0.05,
                "greedy should not lose to random: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn paper_config_has_the_seven_solvers() {
        let cfg = SweepConfig::paper(50);
        assert_eq!(cfg.solvers.len(), 7);
        assert_eq!(cfg.trials, 25);
        assert_eq!(*cfg.ks.last().unwrap(), 50);
        assert_eq!(cfg.ks[0], 0);
    }

    #[test]
    fn jobs_count_does_not_change_the_bits() {
        let p = lattice_problem();
        let cfg = SweepConfig {
            ks: (0..=5).collect(),
            trials: 7,
            seed: 0xF1157E5,
            solvers: SolverKind::PAPER_SET.to_vec(),
        };
        let serial = run_sweep_with(&p, &cfg, &RunnerOptions::with_jobs(1)).unwrap();
        let parallel = run_sweep_with(&p, &cfg, &RunnerOptions::with_jobs(8)).unwrap();
        assert_eq!(serial.series.len(), parallel.series.len());
        for (a, b) in serial.series.iter().zip(&parallel.series) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.points.len(), b.points.len());
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.0, pb.0);
                assert_eq!(pa.1.to_bits(), pb.1.to_bits(), "{}@k={}", a.label, pa.0);
            }
        }
    }

    #[test]
    fn expired_deadline_yields_none() {
        let p = lattice_problem();
        let cfg = SweepConfig {
            ks: vec![0, 1],
            trials: 2,
            seed: 0,
            solvers: vec![SolverKind::RandK],
        };
        let opts = RunnerOptions {
            jobs: 2,
            deadline: Some(Instant::now() - Duration::from_secs(1)),
        };
        assert!(run_sweep_with(&p, &cfg, &opts).is_none());
    }
}
