//! `fp serve`: the long-running filter-placement daemon.
//!
//! Turns the batch repro into a query service: graphs are loaded once
//! into a [`GraphRegistry`], each `(graph, solver, seed)` triple gets a
//! **warm session** on its own OS thread, and placement / FR /
//! ladder-curve queries are answered from live solver state in
//! milliseconds instead of paying load + solve per request.
//!
//! # Determinism contract
//!
//! A serve answer for `(graph, solver, k, seed)` is **bit-identical**
//! to the batch [`Problem::solve_ladder`](crate::Problem::solve_ladder)
//! answer — same placement nodes, same FR bits. Warm sessions make
//! this cheap, not different: prefix-nested solvers extend one ladder
//! and cache `(pick, FR)` per rung; the non-nested randomized
//! baselines (`Rand_I`/`Rand_W`, see
//! [`SolverKind::is_prefix_nested`]) redraw per budget — a pure
//! function of `(k, seed)` — and memoize. FR floats cross the wire
//! through the lossless [`fp_results::json`] writer, so "bit-identical"
//! survives serialization.
//!
//! # Transports
//!
//! One port, two protocols, sniffed from the first byte of each
//! connection:
//!
//! * **Frames** — the length-prefixed JSON frames of
//!   [`fp_results::protocol`] ([`Frame::Call`]/[`Frame::Reply`]); the
//!   native transport, used by [`ServeClient`], `fp loadtest`, and
//!   anything that wants a persistent conversation.
//! * **HTTP/1.1** — a minimal hand-rolled front end (`GET /health`,
//!   `POST /graphs`, `POST /sessions`, `GET
//!   /sessions/:id/placement?k=`, ...) so the daemon is curl-able.
//!   One request per connection (`Connection: close`).
//!
//! Both transports dispatch through the same [`ApiState::handle`], so
//! an HTTP response body and a frame reply body are the same bytes for
//! the same call.
//!
//! # Deadlines
//!
//! A query may carry `deadline_ms`. The deadline is enforced at **rung
//! granularity**: the session checks the clock before growing its
//! ladder by one more filter, answers `408` if time ran out before the
//! requested budgets were reached, and *keeps* the partial ladder — a
//! retry resumes where the expired query stopped. Already-cached rungs
//! are always served, deadline or not.

use crate::registry::{GraphEntry, GraphRegistry, PutError, PutOutcome};
use crate::Problem;
use fp_algorithms::SolverKind;
use fp_graph::NodeId;
use fp_num::Wide128;
use fp_results::hash::Fnv64;
use fp_results::protocol::{
    read_frame, write_frame, Frame, ServeCall, ServeReply, ServeRequest, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use fp_results::{Json, ToJson};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// The default listen address: loopback, port 2012 (the paper's year).
pub const DEFAULT_ADDR: &str = "127.0.0.1:2012";

// ---------------------------------------------------------------------
// Warm sessions
// ---------------------------------------------------------------------

/// One `(k, FR, placement)` row of a query answer.
///
/// `placement` is the paper's filter set in **pick order** (insertion
/// order for greedy ladders), as node indices into the session's
/// graph.
#[derive(Clone, Debug, PartialEq)]
pub struct KAnswer {
    /// The requested budget.
    pub k: usize,
    /// `FR` at this budget — bit-identical to the batch ladder.
    pub fr: f64,
    /// The placement, in pick order.
    pub placement: Vec<NodeId>,
}

/// Why a query got no answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The deadline expired before every requested budget was reached;
    /// `ready` rungs are cached and a retry will resume from there.
    Expired {
        /// Ladder rungs computed so far.
        ready: usize,
    },
    /// The session worker is gone (closed or expired concurrently).
    Closed,
}

/// One structural edit to a session's private copy of its graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeMutation {
    /// `true` inserts the edge, `false` removes it.
    pub insert: bool,
    /// Edge tail.
    pub from: NodeId,
    /// Edge head.
    pub to: NodeId,
}

/// What a session mutation did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutateOutcome {
    /// `"insert_edge"` or `"remove_edge"`.
    pub op: &'static str,
    /// Edge count of the session's graph after the mutation.
    pub edges: usize,
    /// Whether the insertion forced a topological-order rebuild.
    pub reordered: bool,
    /// How many leading ladder rungs the session predicts survive the
    /// mutation and pre-warms. A *hint only*: every rung is recomputed
    /// on the mutated graph, so answers stay bit-identical to a cold
    /// session regardless of this number.
    pub retained_rungs: usize,
}

/// Why a session mutation was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutateError {
    /// A cycle, a duplicate or unknown edge, or an edge removal that
    /// would orphan a placed filter (all 409 on the wire).
    Conflict(String),
    /// The session worker is gone (closed or expired concurrently).
    Closed,
}

enum SessionCmd {
    Query {
        ks: Vec<usize>,
        deadline: Option<Instant>,
        reply: mpsc::Sender<Result<Vec<KAnswer>, QueryError>>,
    },
    Mutate {
        m: EdgeMutation,
        reply: mpsc::Sender<Result<MutateOutcome, MutateError>>,
    },
    Stop,
}

const STATE_WARMING: u8 = 1;
const STATE_READY: u8 = 2;

/// Per-session observability counters, shared between the session's
/// worker thread (rung depth, cache hits) and the dispatch layer
/// (query count, deadline misses, body bytes). Reported as the
/// `"stats"` object in session JSON, so `GET /sessions` carries them.
///
/// These are plain atomics on the side of the session — never inputs
/// to solver state — so they cannot perturb placements or FR bits.
#[derive(Debug, Default)]
struct SessionStats {
    /// Queries dispatched to this session (including failed ones).
    queries: fp_obs::Counter,
    /// Warm ladder length (nested) or memoized budget count (one-shot).
    rung_depth: fp_obs::Gauge,
    /// Requested budgets that were already warm when the query arrived.
    rung_cache_hits: fp_obs::Counter,
    /// Queries answered 408 because `deadline_ms` expired.
    deadline_misses: fp_obs::Counter,
    /// Compact-JSON bytes of query calls received.
    bytes_in: fp_obs::Counter,
    /// Compact-JSON bytes of query reply bodies produced.
    bytes_out: fp_obs::Counter,
    /// Structural mutations accepted by this session.
    mutations: fp_obs::Counter,
    /// Total rungs predicted to survive across those mutations (the
    /// pre-warm work saved, in units of one ladder rung).
    rungs_retained: fp_obs::Counter,
}

impl SessionStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("queries", self.queries.get().to_json()),
            ("rung_depth", Json::Int(i128::from(self.rung_depth.get()))),
            ("rung_cache_hits", self.rung_cache_hits.get().to_json()),
            ("deadline_misses", self.deadline_misses.get().to_json()),
            ("bytes_in", self.bytes_in.get().to_json()),
            ("bytes_out", self.bytes_out.get().to_json()),
            ("mutations", self.mutations.get().to_json()),
            ("rungs_retained", self.rungs_retained.get().to_json()),
        ])
    }
}

/// A warm session: one solver ladder kept alive on its own thread.
///
/// The handle is cheap to clone (via `Arc`) and thread-safe; queries
/// from any number of connections are serialized through the session's
/// command channel, which is what lets interleaved `advance_to`s from
/// concurrent clients stay bit-identical to a single-client walk.
pub struct SessionHandle {
    /// Content-derived id: FNV-1a over (edge hash, solver label, seed).
    pub id: String,
    /// The graph being solved.
    pub graph: Arc<GraphEntry>,
    /// The solver whose ladder this session walks.
    pub solver: SolverKind,
    /// Seed captured at session start (randomized baselines only).
    pub seed: u64,
    state: Arc<AtomicU8>,
    stats: Arc<SessionStats>,
    tx: mpsc::Sender<SessionCmd>,
    last_used: Mutex<Instant>,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("id", &self.id)
            .field("graph", &self.graph.name)
            .field("solver", &self.solver.label())
            .field("seed", &self.seed)
            .field("state", &self.state_name())
            .finish_non_exhaustive()
    }
}

impl SessionHandle {
    /// Lifecycle state: `"warming"` (building the FR denominators) or
    /// `"ready"`. Expired sessions are removed from the table, so the
    /// `"expired"` state is observable only as a later 404.
    pub fn state_name(&self) -> &'static str {
        match self.state.load(Ordering::Acquire) {
            STATE_WARMING => "warming",
            STATE_READY => "ready",
            _ => "created",
        }
    }

    /// Answer the requested budgets, extending the warm ladder as far
    /// as needed. Blocks while the session works; `deadline_ms` bounds
    /// that work at rung granularity.
    pub fn query(
        &self,
        ks: &[usize],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<KAnswer>, QueryError> {
        *self.last_used.lock().expect("session lock poisoned") = Instant::now();
        let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(SessionCmd::Query {
                ks: ks.to_vec(),
                deadline,
                reply: reply_tx,
            })
            .map_err(|_| QueryError::Closed)?;
        reply_rx.recv().map_err(|_| QueryError::Closed)?
    }

    /// Apply one structural mutation to the session's private copy of
    /// its graph (the registry's shared entry is never touched — other
    /// sessions on the same graph keep solving the original).
    ///
    /// On success the worker rebuilds its solver session on the
    /// mutated graph and pre-warms the predicted surviving ladder
    /// prefix; later queries are bit-identical to a cold session
    /// opened on that graph. Conflicting mutations (cycle, duplicate
    /// or unknown edge, orphaned placed filter) change nothing.
    pub fn mutate(&self, m: EdgeMutation) -> Result<MutateOutcome, MutateError> {
        *self.last_used.lock().expect("session lock poisoned") = Instant::now();
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(SessionCmd::Mutate { m, reply: reply_tx })
            .map_err(|_| MutateError::Closed)?;
        reply_rx.recv().map_err(|_| MutateError::Closed)?
    }

    fn idle_for(&self) -> Duration {
        self.last_used
            .lock()
            .expect("session lock poisoned")
            .elapsed()
    }
}

/// How one epoch of a session worker ended: the daemon (or channel)
/// stopped it, or a mutation was accepted and the next epoch must
/// rebuild on the mutated graph.
enum EpochEnd {
    Stopped,
    Mutated { problem: Problem, retain: usize },
}

/// Validate and apply one edge mutation against `cg`, returning the
/// mutated graph and whether the topological order was rebuilt.
/// Conflicts — a cycle, a self-loop, an out-of-range endpoint, a
/// duplicate or unknown edge, or an edge removal that would leave one
/// of `placed` unreachable from the source — return `Err` and build
/// nothing.
fn mutate_cgraph(
    cg: &fp_propagation::CGraph,
    placed: &[NodeId],
    m: EdgeMutation,
) -> Result<(fp_propagation::CGraph, bool), String> {
    let mut next = cg.clone();
    let reordered = if m.insert {
        if m.from.index() < cg.node_count() && cg.csr().children(m.from).contains(&m.to) {
            return Err(format!(
                "edge {} -> {} already exists",
                m.from.index(),
                m.to.index()
            ));
        }
        next.insert_edge(m.from, m.to).map_err(|e| e.to_string())?
    } else {
        if !next.remove_edge(m.from, m.to) {
            return Err(format!(
                "edge {} -> {} does not exist",
                m.from.index(),
                m.to.index()
            ));
        }
        false
    };
    if !m.insert && !placed.is_empty() {
        let reach = fp_graph::reachable_from(next.csr(), next.source());
        if let Some(lost) = placed.iter().find(|p| !reach.contains(p.index())) {
            return Err(format!(
                "removing edge {} -> {} would orphan placed filter {}",
                m.from.index(),
                m.to.index(),
                lost.index()
            ));
        }
    }
    Ok((next, reordered))
}

/// Predict how many leading rungs of the old ladder survive the
/// mutation: the longest prefix of picks disjoint from the mutation
/// site and its downstream cone (whose received counts move; picks
/// upstream keep theirs, though their *order* can still shift, which
/// is why this is only a pre-warm hint — the rebuilt session
/// recomputes every rung, so a wrong prediction costs warm-up time,
/// never correctness).
fn retained_prefix(next: &fp_propagation::CGraph, picks: &[NodeId], m: EdgeMutation) -> usize {
    let affected = fp_graph::reachable_from(next.csr(), m.to);
    picks
        .iter()
        .take_while(|&&p| !affected.contains(p.index()) && p != m.from)
        .count()
}

/// Worker body for prefix-nested solvers: one live ladder plus a rung
/// cache, so a budget is computed at most once per *epoch* (mutations
/// end the epoch and rebuild the ladder on the mutated graph).
fn run_nested_session(
    graph: &GraphEntry,
    solver: SolverKind,
    seed: u64,
    state: &AtomicU8,
    stats: &SessionStats,
    rx: &mpsc::Receiver<SessionCmd>,
) {
    let mut local: Option<Problem> = None;
    let mut warm_to = 0usize;
    loop {
        let problem = local.as_ref().unwrap_or(&graph.problem);
        match run_nested_epoch(problem, solver, seed, state, stats, rx, warm_to) {
            EpochEnd::Stopped => return,
            EpochEnd::Mutated { problem, retain } => {
                state.store(STATE_WARMING, Ordering::Release);
                local = Some(problem);
                warm_to = retain;
            }
        }
    }
}

fn run_nested_epoch(
    problem: &Problem,
    solver: SolverKind,
    seed: u64,
    state: &AtomicU8,
    stats: &SessionStats,
    rx: &mpsc::Receiver<SessionCmd>,
    warm_to: usize,
) -> EpochEnd {
    let solver_impl = solver.build::<Wide128>();
    let cg = problem.cgraph();
    let mut session = solver_impl.session(cg, seed);
    // Rung 0: reading FR here does the one-time denominator passes —
    // this is the "warming" work a fresh session pays up front. After
    // a mutation, the predicted surviving prefix is re-walked here too.
    let mut picks: Vec<NodeId> = Vec::new();
    let mut frs: Vec<f64> = vec![session.fr()];
    let mut exhausted = false;
    while picks.len() < warm_to && !exhausted {
        if let Some(v) = session.next_filter() {
            picks.push(v);
            frs.push(session.fr());
        } else {
            exhausted = true;
        }
    }
    state.store(STATE_READY, Ordering::Release);

    while let Ok(cmd) = rx.recv() {
        match cmd {
            SessionCmd::Query {
                ks,
                deadline,
                reply,
            } => {
                let _span = fp_obs::span("session.query").arg("ks", ks.len() as i64);
                let warm = picks.len();
                stats
                    .rung_cache_hits
                    .add(ks.iter().filter(|&&k| k <= warm || exhausted).count() as u64);
                let want = ks.iter().copied().max().unwrap_or(0);
                let mut expired = false;
                while picks.len() < want && !exhausted && !expired {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        expired = true;
                    } else if let Some(v) = session.next_filter() {
                        picks.push(v);
                        frs.push(session.fr());
                    } else {
                        exhausted = true;
                    }
                }
                stats.rung_depth.set(picks.len() as i64);
                // A budget past the ladder's natural end answers with
                // the full ladder — exactly `advance_to`'s early-stop
                // semantics.
                let answerable = |k: usize| k <= picks.len() || exhausted;
                let out = if ks.iter().all(|&k| answerable(k)) {
                    Ok(ks
                        .iter()
                        .map(|&k| {
                            let rung = k.min(picks.len());
                            KAnswer {
                                k,
                                fr: frs[rung],
                                placement: picks[..rung].to_vec(),
                            }
                        })
                        .collect())
                } else {
                    Err(QueryError::Expired { ready: picks.len() })
                };
                let _ = reply.send(out);
            }
            SessionCmd::Mutate { m, reply } => {
                let _span = fp_obs::span("session.mutate");
                match mutate_cgraph(problem.cgraph(), &picks, m) {
                    Ok((next, reordered)) => {
                        let retain = retained_prefix(&next, &picks, m);
                        stats.mutations.inc();
                        stats.rungs_retained.add(retain as u64);
                        let _ = reply.send(Ok(MutateOutcome {
                            op: if m.insert {
                                "insert_edge"
                            } else {
                                "remove_edge"
                            },
                            edges: next.edge_count(),
                            reordered,
                            retained_rungs: retain,
                        }));
                        return EpochEnd::Mutated {
                            problem: Problem::from_cgraph(next),
                            retain,
                        };
                    }
                    Err(msg) => {
                        let _ = reply.send(Err(MutateError::Conflict(msg)));
                    }
                }
            }
            SessionCmd::Stop => return EpochEnd::Stopped,
        }
    }
    EpochEnd::Stopped
}

/// Worker body for the non-nested randomized baselines: each budget is
/// an independent redraw (a pure function of `(k, seed)`), memoized
/// per epoch (mutations clear the memo along with the graph).
fn run_one_shot_session(
    graph: &GraphEntry,
    solver: SolverKind,
    seed: u64,
    state: &AtomicU8,
    stats: &SessionStats,
    rx: &mpsc::Receiver<SessionCmd>,
) {
    let mut local: Option<Problem> = None;
    loop {
        let problem = local.as_ref().unwrap_or(&graph.problem);
        match run_one_shot_epoch(problem, solver, seed, state, stats, rx) {
            EpochEnd::Stopped => return,
            EpochEnd::Mutated { problem, .. } => {
                state.store(STATE_WARMING, Ordering::Release);
                local = Some(problem);
            }
        }
    }
}

fn run_one_shot_epoch(
    problem: &Problem,
    solver: SolverKind,
    seed: u64,
    state: &AtomicU8,
    stats: &SessionStats,
    rx: &mpsc::Receiver<SessionCmd>,
) -> EpochEnd {
    let mut memo: BTreeMap<usize, KAnswer> = BTreeMap::new();
    let draw = |k: usize| {
        let (_, placement, fr) = problem
            .solve_ladder(solver, &[k], seed)
            .pop()
            .expect("one budget in, one answer out");
        KAnswer {
            k,
            fr,
            placement: placement.nodes().to_vec(),
        }
    };
    memo.insert(0, draw(0)); // warm the objective denominators
    state.store(STATE_READY, Ordering::Release);

    while let Ok(cmd) = rx.recv() {
        match cmd {
            SessionCmd::Query {
                ks,
                deadline,
                reply,
            } => {
                let _span = fp_obs::span("session.query").arg("ks", ks.len() as i64);
                let mut expired = false;
                for &k in &ks {
                    if memo.contains_key(&k) {
                        stats.rung_cache_hits.inc();
                        continue;
                    }
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        expired = true;
                        break;
                    }
                    memo.insert(k, draw(k));
                }
                stats.rung_depth.set(memo.len() as i64);
                let out = if expired {
                    Err(QueryError::Expired { ready: memo.len() })
                } else {
                    Ok(ks.iter().map(|k| memo[k].clone()).collect())
                };
                let _ = reply.send(out);
            }
            SessionCmd::Mutate { m, reply } => {
                let _span = fp_obs::span("session.mutate");
                // "Placed" filters for the orphan rule: everything a
                // memoized answer has handed out.
                let placed: Vec<NodeId> = {
                    let mut all: Vec<NodeId> =
                        memo.values().flat_map(|a| a.placement.clone()).collect();
                    all.sort_unstable();
                    all.dedup();
                    all
                };
                match mutate_cgraph(problem.cgraph(), &placed, m) {
                    Ok((next, reordered)) => {
                        stats.mutations.inc();
                        let _ = reply.send(Ok(MutateOutcome {
                            op: if m.insert {
                                "insert_edge"
                            } else {
                                "remove_edge"
                            },
                            edges: next.edge_count(),
                            reordered,
                            retained_rungs: 0,
                        }));
                        return EpochEnd::Mutated {
                            problem: Problem::from_cgraph(next),
                            retain: 0,
                        };
                    }
                    Err(msg) => {
                        let _ = reply.send(Err(MutateError::Conflict(msg)));
                    }
                }
            }
            SessionCmd::Stop => return EpochEnd::Stopped,
        }
    }
    EpochEnd::Stopped
}

// ---------------------------------------------------------------------
// Session table
// ---------------------------------------------------------------------

/// The daemon's table of warm sessions, keyed by content-derived id.
///
/// Duplicate creation is a *conflict* (HTTP 409) — the existing warm
/// session already answers identically, so a second one could only
/// waste a thread. Sessions expire after `ttl` of disuse; expiry is
/// swept lazily on table access.
///
/// `max_sessions` is a hard budget on live sessions: at the cap, a new
/// open first sheds TTL-expired sessions (the lazy sweep), then evicts
/// the longest-idle *ready* session. When every slot is mid-warmup the
/// open is refused ([`OpenError::Saturated`], HTTP 503 with
/// `Retry-After`) — graceful degradation instead of an unbounded
/// thread pile-up.
pub struct SessionTable {
    ttl: Option<Duration>,
    max_sessions: Option<usize>,
    sessions: Mutex<BTreeMap<String, Arc<SessionHandle>>>,
}

/// Why [`SessionTable::open`] refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpenError {
    /// That exact session already exists; carries the survivor's id
    /// (HTTP 409 on the wire).
    Conflict(String),
    /// The table is at its `--max-sessions` budget and nothing is
    /// evictable (HTTP 503 with `Retry-After`).
    Saturated {
        /// The configured budget, for the error body.
        limit: usize,
    },
}

impl std::fmt::Debug for SessionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTable")
            .field("len", &self.len())
            .field("ttl", &self.ttl)
            .finish_non_exhaustive()
    }
}

impl SessionTable {
    /// An empty table. `ttl` of `None` means sessions live until
    /// explicitly closed; no session cap.
    pub fn new(ttl: Option<Duration>) -> Self {
        Self::with_limits(ttl, None)
    }

    /// An empty table with an optional hard cap on live sessions.
    pub fn with_limits(ttl: Option<Duration>, max_sessions: Option<usize>) -> Self {
        Self {
            ttl,
            max_sessions,
            sessions: Mutex::new(BTreeMap::new()),
        }
    }

    /// The content-derived session id: FNV-1a over the graph's edge
    /// hash, the solver label, and the seed. Two `sessions.open` calls
    /// for the same triple collide by construction — that is the 409.
    pub fn session_id(edge_hash: &str, solver: SolverKind, seed: u64) -> String {
        let mut h = Fnv64::new();
        h.update(edge_hash.as_bytes());
        h.update(solver.label().as_bytes());
        h.update_u64(seed);
        h.finish_hex()
    }

    /// Open a warm session; see [`OpenError`] for the refusal modes.
    pub fn open(
        &self,
        graph: Arc<GraphEntry>,
        solver: SolverKind,
        seed: u64,
    ) -> Result<Arc<SessionHandle>, OpenError> {
        self.sweep_expired();
        let id = Self::session_id(&graph.fingerprint.edge_hash, solver, seed);
        let mut sessions = self.sessions.lock().expect("session table lock poisoned");
        if sessions.contains_key(&id) {
            return Err(OpenError::Conflict(id));
        }
        if let Some(limit) = self.max_sessions {
            if sessions.len() >= limit {
                // TTL-expired sessions are already gone (the sweep
                // above); shed the longest-idle *ready* session next.
                // Warming sessions are mid-solve and never evicted.
                let victim = sessions
                    .iter()
                    .filter(|(_, h)| h.state.load(Ordering::Acquire) == STATE_READY)
                    .max_by_key(|(_, h)| h.idle_for())
                    .map(|(vid, _)| vid.clone());
                let Some(vid) = victim else {
                    return Err(OpenError::Saturated { limit });
                };
                if let Some(evicted) = sessions.remove(&vid) {
                    let _ = evicted.tx.send(SessionCmd::Stop);
                    fp_obs::counter("fp_serve_sessions_evicted_total").inc();
                }
            }
        }
        let (tx, rx) = mpsc::channel();
        let state = Arc::new(AtomicU8::new(STATE_WARMING));
        let stats = Arc::new(SessionStats::default());
        let handle = Arc::new(SessionHandle {
            id: id.clone(),
            graph: Arc::clone(&graph),
            solver,
            seed,
            state: Arc::clone(&state),
            stats: Arc::clone(&stats),
            tx,
            last_used: Mutex::new(Instant::now()),
        });
        let worker_graph = Arc::clone(&graph);
        thread::Builder::new()
            .name(format!("fp-session-{id}"))
            .spawn(move || {
                if solver.is_prefix_nested() {
                    run_nested_session(&worker_graph, solver, seed, &state, &stats, &rx);
                } else {
                    run_one_shot_session(&worker_graph, solver, seed, &state, &stats, &rx);
                }
            })
            .expect("cannot spawn session thread");
        sessions.insert(id, Arc::clone(&handle));
        Ok(handle)
    }

    /// Look a session up by id (sweeping expired sessions first).
    pub fn get(&self, id: &str) -> Option<Arc<SessionHandle>> {
        self.sweep_expired();
        self.sessions
            .lock()
            .expect("session table lock poisoned")
            .get(id)
            .cloned()
    }

    /// Close a session explicitly; `false` if it does not exist.
    pub fn close(&self, id: &str) -> bool {
        let removed = self
            .sessions
            .lock()
            .expect("session table lock poisoned")
            .remove(id);
        match removed {
            Some(handle) => {
                let _ = handle.tx.send(SessionCmd::Stop);
                true
            }
            None => false,
        }
    }

    /// All live sessions, in id order.
    pub fn list(&self) -> Vec<Arc<SessionHandle>> {
        self.sweep_expired();
        self.sessions
            .lock()
            .expect("session table lock poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .lock()
            .expect("session table lock poisoned")
            .len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stop every session (used at daemon shutdown).
    pub fn close_all(&self) {
        let drained: Vec<_> = {
            let mut sessions = self.sessions.lock().expect("session table lock poisoned");
            std::mem::take(&mut *sessions).into_values().collect()
        };
        for handle in drained {
            let _ = handle.tx.send(SessionCmd::Stop);
        }
    }

    fn sweep_expired(&self) {
        let Some(ttl) = self.ttl else { return };
        let mut sessions = self.sessions.lock().expect("session table lock poisoned");
        let expired: Vec<String> = sessions
            .iter()
            .filter(|(_, h)| h.idle_for() > ttl)
            .map(|(id, _)| id.clone())
            .collect();
        for id in expired {
            if let Some(handle) = sessions.remove(&id) {
                let _ = handle.tx.send(SessionCmd::Stop);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The API
// ---------------------------------------------------------------------

/// The daemon's whole state: registry + session table + stop flag.
///
/// [`ApiState::handle`] is the single dispatch point both transports
/// call, which is what makes an HTTP response body and a frame reply
/// body byte-identical for the same [`ServeCall`].
///
/// ```
/// use fp_core::registry::GraphRegistry;
/// use fp_core::serve::ApiState;
/// use fp_results::protocol::ServeCall;
///
/// let api = ApiState::new(GraphRegistry::new(), None);
/// let (status, body) = api.handle(&ServeCall::Health);
/// assert_eq!(status, 200);
/// assert_eq!(body.expect("graphs").unwrap().as_usize(), Some(0));
/// ```
pub struct ApiState {
    registry: GraphRegistry,
    sessions: SessionTable,
    stop: AtomicBool,
}

impl std::fmt::Debug for ApiState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApiState")
            .field("registry", &self.registry)
            .field("sessions", &self.sessions)
            .finish_non_exhaustive()
    }
}

fn error_body(msg: impl Into<String>) -> Json {
    Json::object([("error", Json::Str(msg.into()))])
}

fn session_json(handle: &SessionHandle) -> Json {
    Json::object([
        ("session", handle.id.to_json()),
        ("graph", handle.graph.name.to_json()),
        ("solver", handle.solver.to_json()),
        ("seed", handle.seed.to_json()),
        ("state", Json::Str(handle.state_name().to_string())),
        ("stats", handle.stats.to_json()),
    ])
}

/// The metrics snapshot as canonical JSON: integers stay integers (the
/// lossless writer), histograms keep their cumulative `(le, count)`
/// bucket pairs. This is the `?format=json` body of `GET /metrics` and
/// the frame reply for [`ServeCall::Metrics`].
fn metrics_json(snap: &fp_obs::Snapshot) -> Json {
    let counters = snap
        .counters
        .iter()
        .map(|(n, v)| (n.clone(), v.to_json()))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(n, v)| (n.clone(), Json::Int(i128::from(*v))))
        .collect();
    let histograms = snap
        .histograms
        .iter()
        .map(|h| {
            Json::object([
                ("name", h.name.to_json()),
                (
                    "buckets",
                    Json::Array(
                        h.buckets
                            .iter()
                            .map(|&(le, n)| {
                                Json::object([("le", le.to_json()), ("count", n.to_json())])
                            })
                            .collect(),
                    ),
                ),
                ("sum", h.sum.to_json()),
                ("count", h.count.to_json()),
            ])
        })
        .collect();
    Json::object([
        ("counters", Json::Object(counters)),
        ("gauges", Json::Object(gauges)),
        ("histograms", Json::Array(histograms)),
    ])
}

impl ApiState {
    /// Assemble the daemon state. `ttl` bounds session idle lifetime.
    pub fn new(registry: GraphRegistry, ttl: Option<Duration>) -> Self {
        Self::with_limits(registry, ttl, None)
    }

    /// Like [`ApiState::new`] plus a hard cap on live sessions
    /// (`fp serve --max-sessions N`).
    pub fn with_limits(
        registry: GraphRegistry,
        ttl: Option<Duration>,
        max_sessions: Option<usize>,
    ) -> Self {
        Self {
            registry,
            sessions: SessionTable::with_limits(ttl, max_sessions),
            stop: AtomicBool::new(false),
        }
    }

    /// Whether a `stop` call has been accepted.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// The registry (for callers embedding the state in-process).
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// The session table.
    pub fn sessions(&self) -> &SessionTable {
        &self.sessions
    }

    /// Dispatch one call; returns `(status, body)` where `status`
    /// follows HTTP semantics (200/201/400/404/408/409) on both
    /// transports.
    pub fn handle(&self, call: &ServeCall) -> (u16, Json) {
        let started = Instant::now();
        let span = fp_obs::span("serve.request");
        let (status, body) = self.dispatch(call);
        let _span = span.arg("status", i64::from(status));
        fp_obs::counter("fp_serve_requests_total").inc();
        fp_obs::histogram("fp_serve_handle_us", fp_obs::metrics::LATENCY_US_BUCKETS)
            .observe(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        (status, body)
    }

    fn dispatch(&self, call: &ServeCall) -> (u16, Json) {
        match call {
            ServeCall::Health => (
                200,
                Json::object([
                    ("ok", Json::Bool(true)),
                    ("protocol", PROTOCOL_VERSION.to_json()),
                    ("graphs", self.registry.len().to_json()),
                    ("sessions", self.sessions.len().to_json()),
                ]),
            ),
            ServeCall::GraphList => (
                200,
                Json::object([(
                    "graphs",
                    Json::Array(
                        self.registry
                            .list()
                            .iter()
                            .map(|e| e.fingerprint.to_json())
                            .collect(),
                    ),
                )]),
            ),
            ServeCall::GraphPut {
                name,
                source,
                edges_text,
            } => match self.registry.put_edge_list(name, source, edges_text) {
                Ok((outcome, entry)) => (
                    if outcome == PutOutcome::Created {
                        201
                    } else {
                        200
                    },
                    Json::object([
                        ("created", Json::Bool(outcome == PutOutcome::Created)),
                        ("graph", entry.fingerprint.to_json()),
                    ]),
                ),
                Err(err @ PutError::Conflict { .. }) => (409, error_body(err.to_string())),
                Err(err @ PutError::Invalid(_)) => (400, error_body(err.to_string())),
                Err(err @ PutError::OverBudget(_)) => (503, error_body(err.to_string())),
            },
            ServeCall::SessionOpen {
                graph,
                solver,
                seed,
            } => {
                let Some(entry) = self.registry.get(graph) else {
                    return (404, error_body(format!("unknown graph {graph:?}")));
                };
                match self.sessions.open(entry, *solver, *seed) {
                    Ok(handle) => (201, session_json(&handle)),
                    Err(OpenError::Conflict(id)) => (
                        409,
                        Json::object([
                            ("error", Json::Str("session already exists".into())),
                            ("session", id.to_json()),
                        ]),
                    ),
                    Err(OpenError::Saturated { limit }) => (
                        503,
                        Json::object([
                            (
                                "error",
                                Json::Str(format!(
                                    "session table is full ({limit} max, none evictable); \
                                     retry shortly"
                                )),
                            ),
                            ("retry_after_secs", Json::Int(RETRY_AFTER_SECS.into())),
                        ]),
                    ),
                }
            }
            ServeCall::SessionList => (
                200,
                Json::object([(
                    "sessions",
                    Json::Array(
                        self.sessions
                            .list()
                            .iter()
                            .map(|h| session_json(h))
                            .collect(),
                    ),
                )]),
            ),
            ServeCall::Query {
                session,
                ks,
                deadline_ms,
            } => {
                if ks.is_empty() {
                    return (400, error_body("ks must be non-empty"));
                }
                let Some(handle) = self.sessions.get(session) else {
                    return (404, error_body(format!("unknown session {session:?}")));
                };
                handle.stats.queries.inc();
                handle
                    .stats
                    .bytes_in
                    .add(call.to_json().to_compact().len() as u64);
                let (status, body) = match handle.query(ks, *deadline_ms) {
                    Ok(answers) => (200, query_body(&handle, &answers)),
                    Err(QueryError::Expired { ready }) => {
                        handle.stats.deadline_misses.inc();
                        (
                            408,
                            Json::object([
                                ("error", Json::Str("deadline expired".into())),
                                ("ready_rungs", ready.to_json()),
                            ]),
                        )
                    }
                    Err(QueryError::Closed) => (404, error_body("session closed")),
                };
                handle.stats.bytes_out.add(body.to_compact().len() as u64);
                (status, body)
            }
            ServeCall::Mutate {
                session,
                mutation,
                from,
                to,
            } => {
                let insert = match mutation.as_str() {
                    "insert_edge" => true,
                    "remove_edge" => false,
                    other => {
                        return (400, error_body(format!("unknown mutation kind {other:?}")));
                    }
                };
                let Some(handle) = self.sessions.get(session) else {
                    return (404, error_body(format!("unknown session {session:?}")));
                };
                let resolve = |label: &str| {
                    handle
                        .graph
                        .labels
                        .iter()
                        .position(|l| l == label)
                        .map(NodeId::new)
                };
                let Some(u) = resolve(from) else {
                    return (400, error_body(format!("unknown node label {from:?}")));
                };
                let Some(v) = resolve(to) else {
                    return (400, error_body(format!("unknown node label {to:?}")));
                };
                match handle.mutate(EdgeMutation {
                    insert,
                    from: u,
                    to: v,
                }) {
                    Ok(out) => (
                        200,
                        Json::object([
                            ("session", handle.id.to_json()),
                            ("applied", Json::Str(out.op.to_string())),
                            ("from", from.to_json()),
                            ("to", to.to_json()),
                            ("edges", out.edges.to_json()),
                            ("reordered", Json::Bool(out.reordered)),
                            ("retained_rungs", out.retained_rungs.to_json()),
                        ]),
                    ),
                    Err(MutateError::Conflict(msg)) => (409, error_body(msg)),
                    Err(MutateError::Closed) => (404, error_body("session closed")),
                }
            }
            ServeCall::SessionClose { session } => {
                if self.sessions.close(session) {
                    (200, Json::object([("closed", session.to_json())]))
                } else {
                    (404, error_body(format!("unknown session {session:?}")))
                }
            }
            ServeCall::Metrics => (200, metrics_json(&fp_obs::registry().snapshot())),
            ServeCall::Stop => {
                self.stop.store(true, Ordering::Release);
                (200, Json::object([("stopping", Json::Bool(true))]))
            }
        }
    }
}

fn query_body(handle: &SessionHandle, answers: &[KAnswer]) -> Json {
    let rows = answers
        .iter()
        .map(|a| {
            Json::object([
                ("k", a.k.to_json()),
                ("fr", a.fr.to_json()),
                (
                    "placement",
                    Json::Array(a.placement.iter().map(|v| v.index().to_json()).collect()),
                ),
                (
                    "labels",
                    Json::Array(
                        a.placement
                            .iter()
                            .map(|&v| Json::Str(handle.graph.node_label(v)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::object([
        ("session", handle.id.to_json()),
        ("solver", handle.solver.to_json()),
        ("results", Json::Array(rows)),
    ])
}

// ---------------------------------------------------------------------
// The server: one port, two sniffed transports
// ---------------------------------------------------------------------

/// A bound-but-not-yet-running daemon.
///
/// Binding and running are split so callers can learn the actual
/// address first (port 0 binds an ephemeral port — what every test and
/// the loadtest harness use).
pub struct Server {
    state: Arc<ApiState>,
    listener: TcpListener,
    addr: SocketAddr,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str, state: ApiState) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read local addr: {e}"))?;
        Ok(Self {
            state: Arc::new(state),
            listener,
            addr,
        })
    }

    /// The actual bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared daemon state (for in-process embedding).
    pub fn state(&self) -> &Arc<ApiState> {
        &self.state
    }

    /// Accept connections until a `stop` call arrives; each connection
    /// is served on its own thread. Returns once the acceptor has
    /// drained and every session is told to stop.
    pub fn run(self) -> Result<(), String> {
        for conn in self.listener.incoming() {
            if self.state.stop_requested() {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) => return Err(format!("accept failed: {e}")),
            };
            let state = Arc::clone(&self.state);
            let addr = self.addr;
            thread::Builder::new()
                .name("fp-serve-conn".into())
                .spawn(move || {
                    // Connection errors (hangups, bad requests) end the
                    // connection, never the daemon.
                    let _ = serve_connection(&state, stream, addr);
                })
                .map_err(|e| format!("cannot spawn connection thread: {e}"))?;
        }
        self.state.sessions().close_all();
        Ok(())
    }

    /// Run on a background thread; the returned handle stops the
    /// daemon cleanly on [`ServerHandle::stop`].
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let state = Arc::clone(&self.state);
        let join = thread::Builder::new()
            .name("fp-serve-acceptor".into())
            .spawn(move || self.run())
            .expect("cannot spawn acceptor thread");
        ServerHandle { addr, state, join }
    }
}

/// A running background daemon (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ApiState>,
    join: thread::JoinHandle<Result<(), String>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The daemon's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared daemon state.
    pub fn state(&self) -> &Arc<ApiState> {
        &self.state
    }

    /// Send `stop` and join the acceptor.
    ///
    /// Idempotent with a wire-level stop: if a client already called
    /// `stop` (or `POST /stop`), the daemon may be gone before our
    /// request lands — that still counts as stopped, so only the join
    /// can fail then.
    pub fn stop(self) -> Result<(), String> {
        let request = ServeClient::connect(self.addr).and_then(|mut c| c.call(ServeCall::Stop));
        if let Err(e) = request {
            if !self.state.stop_requested() {
                return Err(e);
            }
        }
        self.join
            .join()
            .map_err(|_| "acceptor thread panicked".to_string())?
    }
}

/// The first byte of a frame is the high byte of a big-endian length
/// capped at [`MAX_FRAME_LEN`] (64 MiB ⇒ `0x04` at most); every HTTP
/// method starts with an ASCII letter (`0x41`+). One peeked byte
/// settles the transport.
fn serve_connection(state: &ApiState, stream: TcpStream, addr: SocketAddr) -> Result<(), String> {
    // Replies are small (a flushed burst per request); Nagle would hold
    // them hostage to the peer's delayed ACK on keep-alive connections
    // (~40 ms per round-trip on loopback), so send them immediately.
    let _ = stream.set_nodelay(true);
    let mut first = [0u8; 1];
    let n = stream
        .peek(&mut first)
        .map_err(|e| format!("cannot peek: {e}"))?;
    if n == 0 {
        return Ok(()); // connected and hung up
    }
    if first[0] <= 0x04 {
        serve_frame_connection(state, stream, addr)
    } else {
        serve_http_connection(state, stream, addr)
    }
}

fn wake_acceptor(addr: SocketAddr) {
    // The acceptor blocks in `accept`; poke it so the stop flag is
    // seen. The dummy connection is served (and sniffed as an
    // immediate hangup) if the race goes the other way.
    let _ = TcpStream::connect(addr);
}

fn serve_frame_connection(
    state: &ApiState,
    stream: TcpStream,
    addr: SocketAddr,
) -> Result<(), String> {
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?,
    );
    let mut writer = BufWriter::new(stream);
    loop {
        match read_frame(&mut reader)? {
            None | Some(Frame::Shutdown) => return Ok(()),
            Some(Frame::Call(req)) => {
                let stopping = matches!(req.call, ServeCall::Stop);
                let (status, body) = state.handle(&req.call);
                write_frame(
                    &mut writer,
                    &Frame::Reply(ServeReply {
                        id: req.id,
                        status,
                        body,
                    }),
                )?;
                if stopping {
                    wake_acceptor(addr);
                    return Ok(());
                }
            }
            Some(other) => {
                write_frame(
                    &mut writer,
                    &Frame::Reply(ServeReply {
                        id: 0,
                        status: 400,
                        body: error_body(format!("expected a call frame, got {other:?}")),
                    }),
                )?;
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------
// The HTTP/1.1 front end
// ---------------------------------------------------------------------

struct HttpRequest {
    method: String,
    path: String,
    query: BTreeMap<String, String>,
    body: String,
    /// Whether the client asked `Connection: keep-alive`. The daemon
    /// defaults to `Connection: close` (one request per connection);
    /// keep-alive is honored only when requested explicitly.
    keep_alive: bool,
}

fn http_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// The `Retry-After` every 503 carries: the table drains in sweeps and
/// evictions, so "soon" is honest — clients with `--retries` backoff
/// on their own schedule anyway.
const RETRY_AFTER_SECS: u16 = 1;

/// Read one HTTP request. `Ok(None)` is a clean EOF — the client hung
/// up between requests, which a keep-alive loop treats as the normal
/// end of the conversation rather than an error.
fn read_http_request(reader: &mut impl BufRead) -> Result<Option<HttpRequest>, (u16, String)> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| (400, format!("cannot read request line: {e}")))?;
    if n == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or((400, "empty request line".to_string()))?
        .to_string();
    let target = parts
        .next()
        .ok_or((400, "request line has no target".to_string()))?;
    let (path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let mut query = BTreeMap::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(k.to_string(), v.to_string());
    }

    let mut content_len = 0usize;
    let mut keep_alive = false;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| (400, format!("cannot read header: {e}")))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_len = value
                    .trim()
                    .parse()
                    .map_err(|_| (400, format!("bad Content-Length {value:?}")))?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    if content_len > MAX_FRAME_LEN as usize {
        return Err((413, format!("body of {content_len} bytes is too large")));
    }
    let mut body = vec![0u8; content_len];
    reader
        .read_exact(&mut body)
        .map_err(|e| (400, format!("truncated body: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| (400, "body is not UTF-8".to_string()))?;
    Ok(Some(HttpRequest {
        method,
        path,
        query,
        body,
        keep_alive,
    }))
}

/// Map an HTTP request onto a [`ServeCall`].
fn route(req: &HttpRequest) -> Result<ServeCall, (u16, String)> {
    let q = |key: &str| -> Result<String, (u16, String)> {
        req.query
            .get(key)
            .cloned()
            .ok_or((400, format!("missing query parameter {key:?}")))
    };
    let q_u64 = |key: &str, default: u64| -> Result<u64, (u16, String)> {
        match req.query.get(key) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| (400, format!("bad {key} {s:?}"))),
        }
    };
    let deadline = || -> Result<Option<u64>, (u16, String)> {
        match req.query.get("deadline_ms") {
            None => Ok(None),
            Some(_) => Ok(Some(q_u64("deadline_ms", 0)?)),
        }
    };
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => Ok(ServeCall::Health),
        ("GET", ["metrics"]) => Ok(ServeCall::Metrics),
        ("GET", ["graphs"]) => Ok(ServeCall::GraphList),
        ("POST", ["graphs"]) => Ok(ServeCall::GraphPut {
            name: q("name")?,
            source: q("source")?,
            edges_text: req.body.clone(),
        }),
        ("GET", ["sessions"]) => Ok(ServeCall::SessionList),
        ("POST", ["sessions"]) => {
            let solver = q("solver")?;
            let solver = fp_results::solver_from_label(&solver).map_err(|e| (400, e))?;
            Ok(ServeCall::SessionOpen {
                graph: q("graph")?,
                solver,
                seed: q_u64("seed", 0)?,
            })
        }
        ("GET", ["sessions", id, "placement"]) => Ok(ServeCall::Query {
            session: (*id).to_string(),
            ks: vec![q("k")?.parse().map_err(|_| (400, "bad k".to_string()))?],
            deadline_ms: deadline()?,
        }),
        ("GET", ["sessions", id, "curve"]) => {
            let ks: Vec<usize> = if let Some(list) = req.query.get("ks") {
                list.split(',')
                    .map(|s| s.trim().parse())
                    .collect::<Result<_, _>>()
                    .map_err(|_| (400, format!("bad ks {list:?}")))?
            } else {
                let kmax = q("kmax")?
                    .parse::<usize>()
                    .map_err(|_| (400, "bad kmax".to_string()))?;
                (0..=kmax).collect()
            };
            Ok(ServeCall::Query {
                session: (*id).to_string(),
                ks,
                deadline_ms: deadline()?,
            })
        }
        ("POST", ["sessions", id, "mutations"]) => Ok(ServeCall::Mutate {
            session: (*id).to_string(),
            mutation: q("mutation")?,
            from: q("from")?,
            to: q("to")?,
        }),
        ("DELETE", ["sessions", id]) => Ok(ServeCall::SessionClose {
            session: (*id).to_string(),
        }),
        ("POST", ["stop"]) => Ok(ServeCall::Stop),
        (_, ["health" | "metrics" | "graphs" | "sessions" | "stop", ..]) => {
            Err((405, format!("method {} not allowed here", req.method)))
        }
        _ => Err((404, format!("no route for {}", req.path))),
    }
}

fn write_http_payload(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> Result<(), String> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let retry_after = if status == 503 {
        format!("Retry-After: {RETRY_AFTER_SECS}\r\n")
    } else {
        String::new()
    };
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n{retry_after}\r\n{body}",
        http_reason(status),
        body.len(),
    )
    .and_then(|()| w.flush())
    .map_err(|e| format!("cannot write response: {e}"))
}

fn write_http_response(
    w: &mut impl Write,
    status: u16,
    body: &Json,
    keep_alive: bool,
) -> Result<(), String> {
    write_http_payload(
        w,
        status,
        "application/json",
        &body.to_compact(),
        keep_alive,
    )
}

fn serve_http_connection(
    state: &ApiState,
    stream: TcpStream,
    addr: SocketAddr,
) -> Result<(), String> {
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?,
    );
    let mut writer = BufWriter::new(stream);
    loop {
        let req = match read_http_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // clean hangup between requests
            Err((status, msg)) => {
                // Parse errors close the connection: framing is gone.
                return write_http_response(&mut writer, status, &error_body(msg), false);
            }
        };
        let keep_alive = req.keep_alive;
        // `GET /metrics` defaults to Prometheus text exposition;
        // `?format=json` falls through to the normal dispatch so the
        // JSON body stays byte-identical to a frame reply.
        if req.method == "GET"
            && req.path == "/metrics"
            && req.query.get("format").map(String::as_str) != Some("json")
        {
            fp_obs::counter("fp_serve_requests_total").inc();
            let text = fp_obs::registry().snapshot().to_prometheus_text();
            write_http_payload(
                &mut writer,
                200,
                "text/plain; version=0.0.4",
                &text,
                keep_alive,
            )?;
        } else {
            match route(&req) {
                Ok(call) => {
                    let stopping = matches!(call, ServeCall::Stop);
                    let (status, body) = state.handle(&call);
                    write_http_response(&mut writer, status, &body, keep_alive)?;
                    if stopping {
                        wake_acceptor(addr);
                        return Ok(());
                    }
                }
                Err((status, msg)) => {
                    write_http_response(&mut writer, status, &error_body(msg), keep_alive)?;
                }
            }
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

// ---------------------------------------------------------------------
// The frame client
// ---------------------------------------------------------------------

/// A frame-transport client: one persistent connection, matched
/// call/reply ids.
///
/// This is what `fp loadtest` and the e2e tests drive; the CLI's
/// one-shot queries use it too.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient")
            .field("next_id", &self.next_id)
            .finish_non_exhaustive()
    }
}

impl ServeClient {
    /// Connect to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?,
        );
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
        })
    }

    /// Send one call, wait for its reply.
    pub fn call(&mut self, call: ServeCall) -> Result<ServeReply, String> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, &Frame::Call(ServeRequest { id, call }))?;
        match read_frame(&mut self.reader)? {
            Some(Frame::Reply(reply)) if reply.id == id => Ok(reply),
            Some(Frame::Reply(reply)) => {
                Err(format!("reply id {} does not match call id {id}", reply.id))
            }
            Some(other) => Err(format!("expected a reply frame, got {other:?}")),
            None => Err("server hung up before replying".to_string()),
        }
    }

    /// Send a clean `Shutdown` frame and drop the connection (the
    /// daemon keeps running — this ends only this conversation).
    pub fn hang_up(mut self) -> Result<(), String> {
        write_frame(&mut self.writer, &Frame::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::GraphRegistry;
    use std::io::Read;

    fn api() -> ApiState {
        let registry = GraphRegistry::new();
        registry
            .put_edge_list(
                "fig1",
                "s",
                "s x\ns y\nx z1\nx z2\ny z2\ny z3\nz1 w\nz2 w\nz3 w\n",
            )
            .unwrap();
        ApiState::new(registry, None)
    }

    fn open_session(api: &ApiState, solver: SolverKind, seed: u64) -> String {
        let (status, body) = api.handle(&ServeCall::SessionOpen {
            graph: "fig1".into(),
            solver,
            seed,
        });
        assert_eq!(status, 201, "{body:?}");
        body.expect("session")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    }

    #[test]
    fn health_counts_graphs_and_sessions() {
        let api = api();
        let (status, body) = api.handle(&ServeCall::Health);
        assert_eq!(status, 200);
        assert_eq!(body.expect("graphs").unwrap().as_usize(), Some(1));
        assert_eq!(body.expect("sessions").unwrap().as_usize(), Some(0));
        open_session(&api, SolverKind::GreedyAll, 0);
        let (_, body) = api.handle(&ServeCall::Health);
        assert_eq!(body.expect("sessions").unwrap().as_usize(), Some(1));
    }

    #[test]
    fn duplicate_session_is_a_409_naming_the_survivor() {
        let api = api();
        let id = open_session(&api, SolverKind::GreedyAll, 0);
        let (status, body) = api.handle(&ServeCall::SessionOpen {
            graph: "fig1".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
        });
        assert_eq!(status, 409);
        assert_eq!(body.expect("session").unwrap().as_str(), Some(id.as_str()));
        // A different seed is a different session.
        let other = open_session(&api, SolverKind::GreedyAll, 1);
        assert_ne!(id, other);
    }

    #[test]
    fn queries_are_bit_identical_to_the_batch_ladder() {
        let api = api();
        let ks: Vec<usize> = vec![0, 1, 2, 3];
        for solver in SolverKind::PAPER_SET {
            let seed = 42;
            let id = open_session(&api, solver, seed);
            let (status, body) = api.handle(&ServeCall::Query {
                session: id,
                ks: ks.clone(),
                deadline_ms: None,
            });
            assert_eq!(status, 200, "{solver:?}: {body:?}");
            let batch = api
                .registry()
                .get("fig1")
                .unwrap()
                .problem
                .solve_ladder(solver, &ks, seed);
            let results = body.expect("results").unwrap().as_array().unwrap();
            assert_eq!(results.len(), batch.len());
            for (row, (k, placement, fr)) in results.iter().zip(batch) {
                assert_eq!(row.expect("k").unwrap().as_usize(), Some(k));
                let got_fr = row.expect("fr").unwrap().as_f64().unwrap();
                assert_eq!(got_fr.to_bits(), fr.to_bits(), "{solver:?} k={k}");
                let got_nodes: Vec<usize> = row
                    .expect("placement")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|v| v.as_usize().unwrap())
                    .collect();
                let want: Vec<usize> = placement.nodes().iter().map(|v| v.index()).collect();
                assert_eq!(got_nodes, want, "{solver:?} k={k}");
            }
        }
    }

    #[test]
    fn warm_sessions_answer_smaller_budgets_after_larger_ones() {
        let api = api();
        let id = open_session(&api, SolverKind::GreedyAll, 0);
        let big = api.handle(&ServeCall::Query {
            session: id.clone(),
            ks: vec![3],
            deadline_ms: None,
        });
        assert_eq!(big.0, 200);
        let (status, body) = api.handle(&ServeCall::Query {
            session: id,
            ks: vec![1],
            deadline_ms: None,
        });
        assert_eq!(status, 200);
        let fig1 = api.registry().get("fig1").unwrap();
        let batch = fig1.problem.solve_ladder(SolverKind::GreedyAll, &[1], 0);
        let row = &body.expect("results").unwrap().as_array().unwrap()[0];
        assert_eq!(
            row.expect("fr").unwrap().as_f64().unwrap().to_bits(),
            batch[0].2.to_bits()
        );
    }

    #[test]
    fn zero_deadline_expires_fresh_work_but_serves_cached_rungs() {
        let api = api();
        let id = open_session(&api, SolverKind::GreedyAll, 0);
        // Demand fresh rungs in zero time: deterministic 408.
        let (status, body) = api.handle(&ServeCall::Query {
            session: id.clone(),
            ks: vec![3],
            deadline_ms: Some(0),
        });
        assert_eq!(status, 408, "{body:?}");
        // Cached rungs (k=0 is always rung 0) are served even at 0 ms.
        let (status, _) = api.handle(&ServeCall::Query {
            session: id.clone(),
            ks: vec![0],
            deadline_ms: Some(0),
        });
        assert_eq!(status, 200);
        // And without a deadline the interrupted budget completes.
        let (status, _) = api.handle(&ServeCall::Query {
            session: id,
            ks: vec![3],
            deadline_ms: None,
        });
        assert_eq!(status, 200);
    }

    #[test]
    fn error_paths_name_the_problem() {
        let api = api();
        let (status, _) = api.handle(&ServeCall::SessionOpen {
            graph: "nope".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
        });
        assert_eq!(status, 404);
        let (status, _) = api.handle(&ServeCall::Query {
            session: "nope".into(),
            ks: vec![1],
            deadline_ms: None,
        });
        assert_eq!(status, 404);
        let id = open_session(&api, SolverKind::GreedyAll, 0);
        let (status, _) = api.handle(&ServeCall::Query {
            session: id,
            ks: vec![],
            deadline_ms: None,
        });
        assert_eq!(status, 400);
        let (status, _) = api.handle(&ServeCall::SessionClose {
            session: "nope".into(),
        });
        assert_eq!(status, 404);
        let (status, _) = api.handle(&ServeCall::GraphPut {
            name: "fig1".into(),
            source: "s".into(),
            edges_text: "s t\n".into(),
        });
        assert_eq!(status, 409);
    }

    #[test]
    fn mutated_sessions_answer_bit_identical_to_a_batch_solve_on_the_mutated_graph() {
        let api = api();
        let ks: Vec<usize> = vec![0, 1, 2, 3];
        let id = open_session(&api, SolverKind::GreedyAll, 0);
        // Warm the ladder so the mutation has rungs to retain.
        let (status, _) = api.handle(&ServeCall::Query {
            session: id.clone(),
            ks: ks.clone(),
            deadline_ms: None,
        });
        assert_eq!(status, 200);
        // fig1 labels by first appearance: s=0 x=1 y=2 z1=3 z2=4 z3=5 w=6.
        let (status, body) = api.handle(&ServeCall::Mutate {
            session: id.clone(),
            mutation: "insert_edge".into(),
            from: "z1".into(),
            to: "z3".into(),
        });
        assert_eq!(status, 200, "{body:?}");
        assert_eq!(
            body.expect("applied").unwrap().as_str(),
            Some("insert_edge")
        );
        assert_eq!(body.expect("edges").unwrap().as_usize(), Some(10));
        assert_eq!(body.expect("reordered").unwrap(), &Json::Bool(false));
        // Warm picks were [z2]; the insertion affects {z3, w}, so the
        // one warm rung is predicted to survive.
        assert_eq!(body.expect("retained_rungs").unwrap().as_usize(), Some(1));

        // The batch oracle: the same edge inserted into a private copy.
        let fig1 = api.registry().get("fig1").unwrap();
        let mut cg = fig1.problem.cgraph().clone();
        cg.insert_edge(NodeId::new(3), NodeId::new(5)).unwrap();
        let batch = Problem::from_cgraph(cg).solve_ladder(SolverKind::GreedyAll, &ks, 0);
        let (status, body) = api.handle(&ServeCall::Query {
            session: id.clone(),
            ks: ks.clone(),
            deadline_ms: None,
        });
        assert_eq!(status, 200, "{body:?}");
        let results = body.expect("results").unwrap().as_array().unwrap();
        for (row, (k, placement, fr)) in results.iter().zip(batch) {
            let got_fr = row.expect("fr").unwrap().as_f64().unwrap();
            assert_eq!(got_fr.to_bits(), fr.to_bits(), "k={k}");
            let got: Vec<usize> = row
                .expect("placement")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_usize().unwrap())
                .collect();
            let want: Vec<usize> = placement.nodes().iter().map(|v| v.index()).collect();
            assert_eq!(got, want, "k={k}");
        }
        // The registry's shared entry is untouched.
        assert_eq!(fig1.problem.cgraph().edge_count(), 9);
        // And the session reports the mutation in its stats.
        let (_, listing) = api.handle(&ServeCall::SessionList);
        let sessions = listing.expect("sessions").unwrap().as_array().unwrap();
        let stats = sessions[0].expect("stats").unwrap();
        assert_eq!(stats.expect("mutations").unwrap().as_usize(), Some(1));
    }

    #[test]
    fn conflicting_mutations_are_409_and_change_nothing() {
        let api = api();
        let id = open_session(&api, SolverKind::GreedyAll, 0);
        for (mutation, from, to) in [
            ("remove_edge", "s", "w"),   // unknown edge
            ("insert_edge", "s", "x"),   // duplicate
            ("insert_edge", "w", "s"),   // cycle
            ("insert_edge", "z2", "z2"), // self-loop
        ] {
            let (status, body) = api.handle(&ServeCall::Mutate {
                session: id.clone(),
                mutation: mutation.into(),
                from: from.into(),
                to: to.into(),
            });
            assert_eq!(status, 409, "{mutation} {from}->{to}: {body:?}");
        }
        // Bad input shapes are 400s, missing sessions 404s.
        let (status, _) = api.handle(&ServeCall::Mutate {
            session: id.clone(),
            mutation: "paint_node".into(),
            from: "s".into(),
            to: "x".into(),
        });
        assert_eq!(status, 400);
        let (status, _) = api.handle(&ServeCall::Mutate {
            session: id.clone(),
            mutation: "insert_edge".into(),
            from: "nope".into(),
            to: "x".into(),
        });
        assert_eq!(status, 400);
        let (status, _) = api.handle(&ServeCall::Mutate {
            session: "nope".into(),
            mutation: "insert_edge".into(),
            from: "s".into(),
            to: "x".into(),
        });
        assert_eq!(status, 404);
        // After all those rejections the session still answers the
        // ORIGINAL graph's ladder bit-for-bit.
        let fig1 = api.registry().get("fig1").unwrap();
        let batch = fig1.problem.solve_ladder(SolverKind::GreedyAll, &[2], 0);
        let (status, body) = api.handle(&ServeCall::Query {
            session: id,
            ks: vec![2],
            deadline_ms: None,
        });
        assert_eq!(status, 200);
        let row = &body.expect("results").unwrap().as_array().unwrap()[0];
        assert_eq!(
            row.expect("fr").unwrap().as_f64().unwrap().to_bits(),
            batch[0].2.to_bits()
        );
    }

    #[test]
    fn removals_that_orphan_a_placed_filter_are_409() {
        // A chain s → a → b: Rand_K at k=2 must place {a, b}, so
        // removing a → b would leave placed filter b unreachable.
        let registry = GraphRegistry::new();
        registry.put_edge_list("chain", "s", "s a\na b\n").unwrap();
        let api = ApiState::new(registry, None);
        let (status, body) = api.handle(&ServeCall::SessionOpen {
            graph: "chain".into(),
            solver: SolverKind::RandK,
            seed: 1,
        });
        assert_eq!(status, 201);
        let id = body
            .expect("session")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let (status, _) = api.handle(&ServeCall::Query {
            session: id.clone(),
            ks: vec![2],
            deadline_ms: None,
        });
        assert_eq!(status, 200);
        let (status, body) = api.handle(&ServeCall::Mutate {
            session: id.clone(),
            mutation: "remove_edge".into(),
            from: "a".into(),
            to: "b".into(),
        });
        assert_eq!(status, 409, "{body:?}");
        let msg = body.expect("error").unwrap().as_str().unwrap().to_string();
        assert!(msg.contains("orphan"), "{msg}");
        // The refused removal left the graph intact: a fresh session
        // with nothing placed yet can remove that same edge.
        let (status, _) = api.handle(&ServeCall::SessionClose {
            session: id.clone(),
        });
        assert_eq!(status, 200);
        let (status, body) = api.handle(&ServeCall::SessionOpen {
            graph: "chain".into(),
            solver: SolverKind::RandK,
            seed: 1,
        });
        assert_eq!(status, 201);
        let fresh = body
            .expect("session")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let (status, body) = api.handle(&ServeCall::Mutate {
            session: fresh,
            mutation: "remove_edge".into(),
            from: "a".into(),
            to: "b".into(),
        });
        assert_eq!(status, 200, "{body:?}");
        assert_eq!(body.expect("edges").unwrap().as_usize(), Some(1));
    }

    #[test]
    fn close_then_query_is_a_404() {
        let api = api();
        let id = open_session(&api, SolverKind::GreedyAll, 0);
        let (status, _) = api.handle(&ServeCall::SessionClose {
            session: id.clone(),
        });
        assert_eq!(status, 200);
        let (status, _) = api.handle(&ServeCall::Query {
            session: id,
            ks: vec![1],
            deadline_ms: None,
        });
        assert_eq!(status, 404);
    }

    #[test]
    fn idle_sessions_expire_lazily() {
        let registry = GraphRegistry::new();
        registry.put_edge_list("g", "s", "s a\na b\n").unwrap();
        let api = ApiState::new(registry, Some(Duration::from_millis(0)));
        let (status, _) = api.handle(&ServeCall::SessionOpen {
            graph: "g".into(),
            solver: SolverKind::GreedyAll,
            seed: 0,
        });
        assert_eq!(status, 201);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(api.sessions().list().len(), 0, "ttl 0 expires on sweep");
    }

    #[test]
    fn http_routes_map_onto_serve_calls() {
        let req = |method: &str, target: &str, body: &str| {
            let raw = format!(
                "{method} {target} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            let mut reader = std::io::BufReader::new(raw.as_bytes());
            let parsed = read_http_request(&mut reader).unwrap().unwrap();
            route(&parsed)
        };
        assert_eq!(req("GET", "/health", "").unwrap(), ServeCall::Health);
        assert_eq!(req("GET", "/metrics", "").unwrap(), ServeCall::Metrics);
        assert_eq!(
            req("GET", "/metrics?format=json", "").unwrap(),
            ServeCall::Metrics
        );
        assert_eq!(
            req("POST", "/graphs?name=g&source=s", "s a\n").unwrap(),
            ServeCall::GraphPut {
                name: "g".into(),
                source: "s".into(),
                edges_text: "s a\n".into(),
            }
        );
        assert_eq!(
            req("POST", "/sessions?graph=g&solver=G_ALL&seed=7", "").unwrap(),
            ServeCall::SessionOpen {
                graph: "g".into(),
                solver: SolverKind::GreedyAll,
                seed: 7,
            }
        );
        assert_eq!(
            req("GET", "/sessions/abc/placement?k=3", "").unwrap(),
            ServeCall::Query {
                session: "abc".into(),
                ks: vec![3],
                deadline_ms: None,
            }
        );
        assert_eq!(
            req("GET", "/sessions/abc/curve?kmax=2&deadline_ms=50", "").unwrap(),
            ServeCall::Query {
                session: "abc".into(),
                ks: vec![0, 1, 2],
                deadline_ms: Some(50),
            }
        );
        assert_eq!(
            req("GET", "/sessions/abc/curve?ks=2,0,2", "").unwrap(),
            ServeCall::Query {
                session: "abc".into(),
                ks: vec![2, 0, 2],
                deadline_ms: None,
            }
        );
        assert_eq!(
            req(
                "POST",
                "/sessions/abc/mutations?mutation=insert_edge&from=a&to=b",
                ""
            )
            .unwrap(),
            ServeCall::Mutate {
                session: "abc".into(),
                mutation: "insert_edge".into(),
                from: "a".into(),
                to: "b".into(),
            }
        );
        assert_eq!(
            req("DELETE", "/sessions/abc", "").unwrap(),
            ServeCall::SessionClose {
                session: "abc".into(),
            }
        );
        assert_eq!(req("POST", "/stop", "").unwrap(), ServeCall::Stop);
        assert_eq!(req("PATCH", "/health", "").unwrap_err().0, 405);
        assert_eq!(req("GET", "/wat", "").unwrap_err().0, 404);
        assert_eq!(
            req("GET", "/sessions/abc/placement", "").unwrap_err().0,
            400
        );
    }

    #[test]
    fn frame_and_http_transports_serve_the_same_bytes() {
        let server = Server::bind("127.0.0.1:0", api()).unwrap();
        let addr = server.local_addr();
        let handle = server.spawn();

        let mut client = ServeClient::connect(addr).unwrap();
        let open = client
            .call(ServeCall::SessionOpen {
                graph: "fig1".into(),
                solver: SolverKind::GreedyAll,
                seed: 0,
            })
            .unwrap();
        assert_eq!(open.status, 201);
        let id = open
            .body
            .expect("session")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let frame_reply = client
            .call(ServeCall::Query {
                session: id.clone(),
                ks: vec![2],
                deadline_ms: None,
            })
            .unwrap();
        assert_eq!(frame_reply.status, 200);

        // Same query over HTTP: the body bytes must match the frame
        // reply's body exactly.
        let mut http = TcpStream::connect(addr).unwrap();
        write!(
            http,
            "GET /sessions/{id}/placement?k=2 HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        http.read_to_string(&mut raw).unwrap();
        let (head, http_body) = raw.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(http_body, frame_reply.body.to_compact());

        client.hang_up().unwrap();
        handle.stop().unwrap();
    }

    /// Read one HTTP response off a keep-alive connection: status
    /// line + headers, then exactly `Content-Length` body bytes.
    fn read_http_response(reader: &mut impl BufRead) -> (u16, BTreeMap<String, String>, String) {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let status: u16 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut headers = BTreeMap::new();
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).unwrap();
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            let (name, value) = header.split_once(':').unwrap();
            headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
        }
        let len: usize = headers["content-length"].parse().unwrap();
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).unwrap();
        (status, headers, String::from_utf8(body).unwrap())
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server = Server::bind("127.0.0.1:0", api()).unwrap();
        let addr = server.local_addr();
        let handle = server.spawn();

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for _ in 0..3 {
            write!(
                writer,
                "GET /health HTTP/1.1\r\nHost: x\r\nConnection: keep-alive\r\n\r\n"
            )
            .unwrap();
            let (status, headers, body) = read_http_response(&mut reader);
            assert_eq!(status, 200);
            assert_eq!(headers["connection"], "keep-alive");
            assert!(body.contains("\"ok\":true"), "{body}");
        }
        // Without the header the daemon still closes after one reply.
        write!(writer, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let (status, headers, _) = read_http_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(headers["connection"], "close");
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection must be closed after reply");

        handle.stop().unwrap();
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text_and_lossless_json() {
        let server = Server::bind("127.0.0.1:0", api()).unwrap();
        let addr = server.local_addr();
        let handle = server.spawn();

        // A request beforehand guarantees the serve series exist.
        let mut client = ServeClient::connect(addr).unwrap();
        assert_eq!(client.call(ServeCall::Health).unwrap().status, 200);

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write!(
            writer,
            "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: keep-alive\r\n\r\n"
        )
        .unwrap();
        let (status, headers, text) = read_http_response(&mut reader);
        assert_eq!(status, 200);
        assert!(headers["content-type"].starts_with("text/plain"));
        assert!(
            text.contains("# TYPE fp_serve_requests_total counter"),
            "{text}"
        );
        assert!(
            text.contains("fp_serve_handle_us_bucket{le=\"+Inf\"}"),
            "{text}"
        );

        // Same connection (keep-alive): the JSON flavor, which must be
        // byte-compatible with the frame reply's canonical shape.
        write!(
            writer,
            "GET /metrics?format=json HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .unwrap();
        let (status, headers, body) = read_http_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(headers["content-type"], "application/json");
        let parsed = Json::parse(&body).unwrap();
        let counters = parsed.expect("counters").unwrap();
        assert!(counters.get("fp_serve_requests_total").is_some(), "{body}");
        assert!(parsed.expect("histograms").unwrap().as_array().is_some());

        let frame_reply = client.call(ServeCall::Metrics).unwrap();
        assert_eq!(frame_reply.status, 200);
        assert!(frame_reply
            .body
            .expect("counters")
            .unwrap()
            .get("fp_serve_requests_total")
            .is_some());

        client.hang_up().unwrap();
        handle.stop().unwrap();
    }

    #[test]
    fn session_stats_ride_along_in_session_json() {
        let api = api();
        let id = open_session(&api, SolverKind::GreedyAll, 0);
        let query = |ks: Vec<usize>, deadline_ms: Option<u64>| {
            api.handle(&ServeCall::Query {
                session: id.clone(),
                ks,
                deadline_ms,
            })
        };
        // Fresh session, zero deadline: a deterministic deadline miss.
        assert_eq!(query(vec![1], Some(0)).0, 408, "fresh rung at 0 ms");
        assert_eq!(query(vec![1], None).0, 200);
        assert_eq!(query(vec![1], None).0, 200, "second k=1 query is warm");

        let (status, body) = api.handle(&ServeCall::SessionList);
        assert_eq!(status, 200);
        let sessions = body.expect("sessions").unwrap().as_array().unwrap();
        let stats = sessions[0].expect("stats").unwrap();
        let get = |key: &str| stats.expect(key).unwrap().as_u64().unwrap();
        assert_eq!(get("queries"), 3);
        assert_eq!(get("rung_depth"), 1);
        assert!(get("rung_cache_hits") >= 1, "second k=1 query was warm");
        assert_eq!(get("deadline_misses"), 1);
        assert!(get("bytes_in") > 0);
        assert!(get("bytes_out") > 0);
    }

    fn api_with_cap(cap: usize) -> ApiState {
        let registry = GraphRegistry::new();
        registry
            .put_edge_list(
                "fig1",
                "s",
                "s x\ns y\nx z1\nx z2\ny z2\ny z3\nz1 w\nz2 w\nz3 w\n",
            )
            .unwrap();
        ApiState::with_limits(registry, None, Some(cap))
    }

    fn open_call(seed: u64) -> ServeCall {
        ServeCall::SessionOpen {
            graph: "fig1".into(),
            solver: SolverKind::GreedyAll,
            seed,
        }
    }

    /// Block until the session's warm-up solve lands (bounded).
    fn wait_ready(api: &ApiState, id: &str) {
        let handle = api.sessions().get(id).expect("session exists");
        for _ in 0..500 {
            if handle.state.load(Ordering::Acquire) == STATE_READY {
                return;
            }
            thread::sleep(Duration::from_millis(10));
        }
        panic!("session {id} never became ready");
    }

    #[test]
    fn max_sessions_zero_is_always_a_503_with_a_retry_hint() {
        let api = api_with_cap(0);
        let (status, body) = api.handle(&open_call(0));
        assert_eq!(status, 503, "{body:?}");
        assert_eq!(body.expect("retry_after_secs").unwrap().as_u64(), Some(1));
        let err = body.expect("error").unwrap().as_str().unwrap().to_string();
        assert!(err.contains("full"), "{err}");
    }

    #[test]
    fn at_the_cap_the_idlest_ready_session_is_evicted() {
        let api = api_with_cap(1);
        let a = open_session(&api, SolverKind::GreedyAll, 0);
        wait_ready(&api, &a);
        let b = open_session(&api, SolverKind::GreedyAll, 1);
        assert_ne!(a, b);
        assert_eq!(api.sessions().len(), 1, "the cap held");
        // The evicted session is gone; the newcomer answers.
        let (status, _) = api.handle(&ServeCall::Query {
            session: a.clone(),
            ks: vec![1],
            deadline_ms: None,
        });
        assert_eq!(status, 404, "evicted session must be gone");
        let (status, _) = api.handle(&ServeCall::Query {
            session: b,
            ks: vec![1],
            deadline_ms: None,
        });
        assert_eq!(status, 200);
    }

    #[test]
    fn a_cap_full_of_warming_sessions_saturates_instead_of_evicting() {
        let api = api_with_cap(1);
        let a = open_session(&api, SolverKind::GreedyAll, 0);
        // Pin the only occupant in the warming state: mid-solve
        // sessions are never evicted, so the table is saturated.
        let handle = api.sessions().get(&a).expect("session exists");
        handle.state.store(STATE_WARMING, Ordering::Release);
        let (status, body) = api.handle(&open_call(1));
        assert_eq!(status, 503, "{body:?}");
        assert_eq!(api.sessions().len(), 1, "nothing was evicted");
    }

    #[test]
    fn expired_sessions_free_slots_before_any_eviction() {
        let registry = GraphRegistry::new();
        registry.put_edge_list("fig1", "s", "s x\n").unwrap();
        let api = ApiState::with_limits(registry, Some(Duration::from_millis(0)), Some(1));
        let (status, _) = api.handle(&open_call(0));
        assert_eq!(status, 201);
        // ttl 0: the first session is expired by the time the second
        // open sweeps, so the slot frees without the eviction path.
        let (status, body) = api.handle(&open_call(1));
        assert_eq!(status, 201, "{body:?}");
        assert_eq!(api.sessions().len(), 1);
    }

    #[test]
    fn a_503_carries_retry_after_on_the_wire() {
        let mut out = Vec::new();
        write_http_payload(&mut out, 503, "application/json", "{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("\r\nRetry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        // And a 200 does not.
        let mut out = Vec::new();
        write_http_payload(&mut out, 200, "application/json", "{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("Retry-After"), "{text}");
    }
}
