//! `fp`: the filter-placement command-line tool.
//!
//! See `fp help` or [`fp_core::cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fp_core::cli::run(&args) {
        // The hidden `worker` subcommand owns stdout for its frame
        // protocol and returns an empty string — print nothing then.
        Ok(out) if out.is_empty() => {}
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
