//! The worker side of the process-pool sweep: `fp worker` /
//! `repro worker`.
//!
//! [`serve`] speaks the [`fp_results::protocol`] frame protocol on a
//! reader/writer pair (the real binaries pass stdin/stdout): say
//! hello, receive the sweep context, then answer cell requests until
//! a shutdown frame or a clean EOF. The graph arrives as explicit
//! structure (node count + index pairs + source index), so the
//! [`Problem`] built here is *identical* — index for index — to the
//! dispatcher's, and every evaluated cell lands the same bits the
//! in-process runner would produce.
//!
//! The subcommand is hidden: it is an implementation detail of
//! `--workers N`, spawned by [`fp_results::worker`]'s dispatcher, not
//! something a person types. Errors (malformed frames, an impossible
//! graph) return `Err` and the binary exits non-zero; the dispatcher
//! treats that as a crash and re-queues the in-flight cell.

use crate::Problem;
use fp_graph::{DiGraph, NodeId};
use fp_results::protocol::{read_frame, write_frame, CellResponse, Frame, SweepInit, WorkerHello};
use fp_results::sweep::eval_cell;
use std::io::{Read, Write};

/// Environment variable for failure-injection tests: after answering
/// this many cells, the worker aborts on its next request without
/// responding — the sharpest "worker died mid-cell" a test can stage.
pub const FAIL_AFTER_ENV: &str = "FP_WORKER_FAIL_AFTER";

/// Serve the worker protocol over `input`/`output` until shutdown or
/// clean EOF.
pub fn serve(mut input: impl Read, mut output: impl Write) -> Result<(), String> {
    let fail_after: Option<usize> = std::env::var(FAIL_AFTER_ENV)
        .ok()
        .and_then(|v| v.parse().ok());

    write_frame(&mut output, &Frame::Hello(WorkerHello::current()))?;
    let init = match read_frame(&mut input)? {
        Some(Frame::Init(init)) => init,
        Some(other) => return Err(format!("expected init, got {other:?}")),
        None => return Ok(()), // dispatcher went away before init: nothing to do
    };
    let (problem, ks) = build_problem(init)?;

    let mut served = 0usize;
    loop {
        match read_frame(&mut input)? {
            Some(Frame::Request(req)) => {
                if fail_after.is_some_and(|n| served >= n) {
                    // Test hook: die abruptly with the cell in flight.
                    std::process::exit(17);
                }
                let output_cell = eval_cell(&problem, &ks, &req.cell);
                write_frame(
                    &mut output,
                    &Frame::Response(CellResponse {
                        id: req.id,
                        output: output_cell,
                    }),
                )?;
                served += 1;
            }
            Some(Frame::Shutdown) | None => return Ok(()),
            Some(other) => return Err(format!("expected a request, got {other:?}")),
        }
    }
}

/// Rebuild the dispatcher's exact problem from the init frame.
fn build_problem(init: SweepInit) -> Result<(Problem, Vec<usize>), String> {
    let g = DiGraph::from_pairs(init.nodes, init.edges)
        .map_err(|e| format!("init frame carries an invalid graph: {e}"))?;
    if init.source >= init.nodes {
        return Err(format!(
            "init frame source index {} out of range for {} nodes",
            init.source, init.nodes
        ));
    }
    let problem = Problem::new(&g, NodeId::new(init.source)).map_err(|e| e.to_string())?;
    Ok((problem, init.ks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_algorithms::SolverKind;
    use fp_results::model::SweepConfig;
    use fp_results::protocol::{CellRequest, PROTOCOL_VERSION};
    use fp_results::sweep::{reduce_cells, run_sweep_cells, sweep_cells, CellOut};
    use fp_results::RunnerOptions;

    fn diamond_init(ks: Vec<usize>) -> SweepInit {
        SweepInit {
            nodes: 4,
            edges: vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            source: 0,
            ks,
        }
    }

    /// Drive a full conversation against `serve` through in-memory
    /// pipes and return the responses.
    fn converse(init: SweepInit, cells: &[fp_results::sweep::Cell]) -> Vec<CellOut> {
        let mut dispatcher_out = Vec::new();
        write_frame(&mut dispatcher_out, &Frame::Init(init)).unwrap();
        for (i, cell) in cells.iter().enumerate() {
            write_frame(
                &mut dispatcher_out,
                &Frame::Request(CellRequest {
                    id: i as u64,
                    cell: *cell,
                }),
            )
            .unwrap();
        }
        write_frame(&mut dispatcher_out, &Frame::Shutdown).unwrap();

        let mut worker_out = Vec::new();
        serve(dispatcher_out.as_slice(), &mut worker_out).unwrap();

        let mut r = worker_out.as_slice();
        match read_frame(&mut r).unwrap() {
            Some(Frame::Hello(h)) => assert_eq!(h.version, PROTOCOL_VERSION),
            other => panic!("expected hello, got {other:?}"),
        }
        let mut outputs = Vec::new();
        while let Some(frame) = read_frame(&mut r).unwrap() {
            match frame {
                Frame::Response(resp) => {
                    assert_eq!(resp.id, outputs.len() as u64, "answers arrive in order");
                    outputs.push(resp.output);
                }
                other => panic!("expected a response, got {other:?}"),
            }
        }
        outputs
    }

    #[test]
    fn served_cells_match_the_in_process_runner_bit_for_bit() {
        let cfg = SweepConfig {
            ks: vec![0, 1, 2],
            trials: 3,
            seed: 2012,
            solvers: vec![SolverKind::GreedyAll, SolverKind::RandK, SolverKind::RandW],
        };
        let cells = sweep_cells(&cfg);
        let outputs = converse(diamond_init(cfg.ks.clone()), &cells);
        let via_worker = reduce_cells(&cfg, outputs);

        let g = DiGraph::from_pairs(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let problem = Problem::new(&g, NodeId::new(0)).unwrap();
        let in_process = run_sweep_cells(&problem, &cfg, &RunnerOptions::with_jobs(1)).unwrap();

        assert_eq!(via_worker.series.len(), in_process.series.len());
        for (a, b) in via_worker.series.iter().zip(&in_process.series) {
            assert_eq!(a.label, b.label);
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.0, pb.0);
                assert_eq!(pa.1.to_bits(), pb.1.to_bits(), "{}@k={}", a.label, pa.0);
            }
        }
    }

    #[test]
    fn eof_before_init_is_a_clean_exit() {
        let mut worker_out = Vec::new();
        serve(&[][..], &mut worker_out).unwrap();
        // It still said hello first.
        assert!(matches!(
            read_frame(&mut worker_out.as_slice()).unwrap(),
            Some(Frame::Hello(_))
        ));
    }

    #[test]
    fn garbage_input_is_a_described_error() {
        let garbage = b"this is not a frame stream".to_vec();
        let err = serve(garbage.as_slice(), &mut Vec::new()).unwrap_err();
        assert!(err.contains("frame") || err.contains("exceeds"), "{err}");
    }

    #[test]
    fn anything_but_init_first_is_a_protocol_error() {
        let mut dispatcher_out = Vec::new();
        write_frame(
            &mut dispatcher_out,
            &Frame::Request(CellRequest {
                id: 0,
                cell: fp_results::sweep::Cell::Curve {
                    solver: SolverKind::GreedyAll,
                },
            }),
        )
        .unwrap();
        let err = serve(dispatcher_out.as_slice(), &mut Vec::new()).unwrap_err();
        assert!(err.contains("expected init"), "{err}");
    }

    #[test]
    fn invalid_init_graphs_are_refused() {
        let bad = SweepInit {
            nodes: 2,
            edges: vec![(0, 5)], // target out of range
            source: 0,
            ks: vec![0, 1],
        };
        let mut dispatcher_out = Vec::new();
        write_frame(&mut dispatcher_out, &Frame::Init(bad)).unwrap();
        let err = serve(dispatcher_out.as_slice(), &mut Vec::new()).unwrap_err();
        assert!(err.contains("invalid graph"), "{err}");

        let bad_source = SweepInit {
            nodes: 2,
            edges: vec![(0, 1)],
            source: 9,
            ks: vec![0],
        };
        let mut dispatcher_out = Vec::new();
        write_frame(&mut dispatcher_out, &Frame::Init(bad_source)).unwrap();
        let err = serve(dispatcher_out.as_slice(), &mut Vec::new()).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }
}
