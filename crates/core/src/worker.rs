//! The worker side of the process-pool sweep: `fp worker` /
//! `repro worker`.
//!
//! [`serve`] speaks the [`fp_results::protocol`] frame protocol on a
//! reader/writer pair (the real binaries pass stdin/stdout): say
//! hello, receive the sweep context, then answer cell requests until
//! a shutdown frame or a clean EOF. The graph arrives as explicit
//! structure (node count + index pairs + source index), so the
//! [`Problem`] built here is *identical* — index for index — to the
//! dispatcher's, and every evaluated cell lands the same bits the
//! in-process runner would produce.
//!
//! While a session is open the worker emits a `heartbeat` frame every
//! [`HEARTBEAT_INTERVAL`] from a
//! side thread, so the dispatcher can tell "slow cell" from "hung
//! process": a worker stuck inside a cell still heartbeats (and is
//! governed by the per-cell deadline), while a worker wedged in the
//! transport stops heartbeating and is declared lost. Data frames
//! (hello, responses) route through the [`fp_results::net::Chaos`]
//! fault injector, so `FP_CHAOS=drop@N` and friends perturb real
//! worker processes deterministically in tests.
//!
//! [`serve_connect`] is the remote flavour: dial a dispatcher's
//! `--listen` socket, authenticate with the shared `--token`, and
//! serve the same session protocol. Lost connections reconnect with
//! capped exponential backoff; a `shutdown` frame ends the worker for
//! good.
//!
//! The stdio subcommand is hidden: it is an implementation detail of
//! `--workers N`, spawned by [`fp_results::worker`]'s dispatcher, not
//! something a person types. Errors (malformed frames, an impossible
//! graph) return `Err` and the binary exits non-zero; the dispatcher
//! treats that as a crash and re-queues the in-flight cells.

use crate::Problem;
use fp_graph::{DiGraph, NodeId};
use fp_results::net::{Chaos, HEARTBEAT_INTERVAL};
use fp_results::protocol::{read_frame, write_frame, CellResponse, Frame, SweepInit, WorkerHello};
use fp_results::sweep::eval_cell;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable for failure-injection tests: after answering
/// this many cells, the worker aborts on its next request without
/// responding — the sharpest "worker died mid-cell" a test can stage.
pub const FAIL_AFTER_ENV: &str = "FP_WORKER_FAIL_AFTER";

/// How often the heartbeat thread checks the clock / stop flag. Small
/// so sessions end promptly, large enough to stay invisible in perf.
const HEARTBEAT_TICK: Duration = Duration::from_millis(25);

/// How a finished session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionEnd {
    /// The dispatcher said `shutdown`: the sweep is over.
    Shutdown,
    /// The transport reached EOF without a `shutdown` frame — the
    /// dispatcher dropped us (declared lost, crashed, or finished
    /// without a goodbye). A remote worker may reconnect.
    Dropped,
}

/// Serve one worker session over `input`/`output` until shutdown or
/// clean EOF (the stdio entry point behind `fp worker`).
pub fn serve(input: impl Read, output: impl Write + Send) -> Result<(), String> {
    let chaos = Chaos::from_env()?;
    serve_session(input, output, None, &chaos).map(|_| ())
}

/// Dial `addr`, authenticate with `token`, and serve sweep cells until
/// the dispatcher sends `shutdown`. Lost connections (including
/// refused dials while the dispatcher is still warming up) retry with
/// capped exponential backoff — 100ms doubling to a 5s ceiling — for
/// up to `retries` consecutive failures. Returns a one-line summary
/// for the CLI to print.
pub fn serve_connect(addr: &str, token: &str, retries: u32) -> Result<String, String> {
    // One injector for the whole process, so `FP_CHAOS` fires once
    // even across reconnects.
    let chaos = Chaos::from_env()?;
    let backoff_total = fp_obs::counter("fp_pool_reconnect_backoff_ms_total");
    let mut served_total = 0usize;
    let mut sessions = 0usize;
    let mut failures = 0u32;
    loop {
        let outcome = dial(addr).and_then(|(read_half, write_half)| {
            serve_session(read_half, write_half, Some(token), &chaos)
        });
        match outcome {
            Ok((served, SessionEnd::Shutdown)) => {
                served_total += served;
                sessions += 1;
                return Ok(format!(
                    "worker: served {served_total} cell(s) over {sessions} session(s) to {addr}"
                ));
            }
            Ok((served, SessionEnd::Dropped)) => {
                served_total += served;
                sessions += 1;
                if served > 0 {
                    // Progress proves the fabric works; a drop after
                    // real work is the dispatcher's call, not ours.
                    failures = 0;
                }
                eprintln!("worker: dispatcher dropped the connection; reconnecting");
            }
            Err(e) => eprintln!("worker: {e}"),
        }
        failures += 1;
        if failures > retries {
            return if served_total > 0 {
                Ok(format!(
                    "worker: dispatcher gone after {failures} attempt(s); \
                     served {served_total} cell(s) over {sessions} session(s)"
                ))
            } else {
                Err(format!(
                    "cannot reach a dispatcher at {addr} after {failures} attempt(s)"
                ))
            };
        }
        let backoff = reconnect_backoff(failures);
        backoff_total.add(backoff.as_millis() as u64);
        std::thread::sleep(backoff);
    }
}

/// Attempt `n` (1-based) waits 100ms · 2^(n-1), capped at 5s.
fn reconnect_backoff(attempt: u32) -> Duration {
    let ms = 100u64.saturating_mul(1u64 << attempt.saturating_sub(1).min(10));
    Duration::from_millis(ms.min(5_000))
}

/// Connect and split the stream into read/write halves.
fn dial(addr: &str) -> Result<(TcpStream, TcpStream), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let read_half = stream
        .try_clone()
        .map_err(|e| format!("cannot clone the connection to {addr}: {e}"))?;
    Ok((read_half, stream))
}

/// Serve one session: hello (with `token` when remote), init, then
/// requests until shutdown/EOF, heartbeating from a side thread the
/// whole time. Returns how many cells were answered and how the
/// session ended.
fn serve_session(
    mut input: impl Read,
    output: impl Write + Send,
    token: Option<&str>,
    chaos: &Chaos,
) -> Result<(usize, SessionEnd), String> {
    let fail_after: Option<usize> = std::env::var(FAIL_AFTER_ENV)
        .ok()
        .and_then(|v| v.parse().ok());
    let remote = token.is_some();

    let out = Mutex::new(output);
    let hello = match token {
        Some(t) => WorkerHello::with_token(t),
        None => WorkerHello::current(),
    };
    chaos.write_data_frame(&mut *lock(&out), &Frame::Hello(hello))?;

    let init = match read_frame(&mut input)? {
        Some(Frame::Init(init)) => init,
        Some(other) => return Err(format!("expected init, got {other:?}")),
        // Pre-init EOF: over stdio the dispatcher simply went away
        // (nothing to do); over TCP it means our hello was refused.
        None if remote => {
            return Err("dispatcher closed before init (bad token or protocol version?)".into())
        }
        None => return Ok((0, SessionEnd::Dropped)),
    };
    let (problem, ks) = build_problem(init)?;

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| heartbeat_loop(&out, &stop));
        let result = serve_cells(&mut input, &out, &problem, &ks, chaos, fail_after);
        stop.store(true, Ordering::Relaxed);
        result
    })
}

/// Emit a heartbeat every [`HEARTBEAT_INTERVAL`] until `stop` is set
/// or the peer stops accepting writes. Heartbeats bypass the chaos
/// injector on purpose: their count is timing-dependent, and chaos
/// must stay deterministic.
fn heartbeat_loop(out: &Mutex<impl Write>, stop: &AtomicBool) {
    let mut last = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(HEARTBEAT_TICK);
        if last.elapsed() < HEARTBEAT_INTERVAL {
            continue;
        }
        if write_frame(&mut *lock(out), &Frame::Heartbeat).is_err() {
            return; // peer gone; the request loop will see it too
        }
        last = Instant::now();
    }
}

/// The request/response loop shared by stdio and TCP sessions.
fn serve_cells(
    input: &mut impl Read,
    out: &Mutex<impl Write>,
    problem: &Problem,
    ks: &[usize],
    chaos: &Chaos,
    fail_after: Option<usize>,
) -> Result<(usize, SessionEnd), String> {
    let mut served = 0usize;
    loop {
        match read_frame(input)? {
            Some(Frame::Request(req)) => {
                if fail_after.is_some_and(|n| served >= n) {
                    // Test hook: die abruptly with the cell in flight.
                    std::process::exit(17);
                }
                let output_cell = eval_cell(problem, ks, &req.cell);
                chaos.write_data_frame(
                    &mut *lock(out),
                    &Frame::Response(CellResponse {
                        id: req.id,
                        output: output_cell,
                    }),
                )?;
                served += 1;
            }
            Some(Frame::Shutdown) => return Ok((served, SessionEnd::Shutdown)),
            None => return Ok((served, SessionEnd::Dropped)),
            Some(Frame::Heartbeat) => {} // tolerated, though dispatchers don't send them
            Some(other) => return Err(format!("expected a request, got {other:?}")),
        }
    }
}

/// Lock that shrugs off poisoning: a panic mid-write already tore the
/// session down; the bytes can't get more wrong.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Rebuild the dispatcher's exact problem from the init frame.
fn build_problem(init: SweepInit) -> Result<(Problem, Vec<usize>), String> {
    let g = DiGraph::from_pairs(init.nodes, init.edges)
        .map_err(|e| format!("init frame carries an invalid graph: {e}"))?;
    if init.source >= init.nodes {
        return Err(format!(
            "init frame source index {} out of range for {} nodes",
            init.source, init.nodes
        ));
    }
    let problem = Problem::new(&g, NodeId::new(init.source)).map_err(|e| e.to_string())?;
    Ok((problem, init.ks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_algorithms::SolverKind;
    use fp_results::model::SweepConfig;
    use fp_results::protocol::{CellRequest, PROTOCOL_VERSION};
    use fp_results::sweep::{reduce_cells, run_sweep_cells, sweep_cells, CellOut};
    use fp_results::RunnerOptions;

    fn diamond_init(ks: Vec<usize>) -> SweepInit {
        SweepInit {
            nodes: 4,
            edges: vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            source: 0,
            ks,
        }
    }

    /// Drive a full conversation against `serve` through in-memory
    /// pipes and return the responses. Heartbeats may be interleaved
    /// anywhere in the output; they carry no data and are skipped.
    fn converse(init: SweepInit, cells: &[fp_results::sweep::Cell]) -> Vec<CellOut> {
        let mut dispatcher_out = Vec::new();
        write_frame(&mut dispatcher_out, &Frame::Init(init)).unwrap();
        for (i, cell) in cells.iter().enumerate() {
            write_frame(
                &mut dispatcher_out,
                &Frame::Request(CellRequest {
                    id: i as u64,
                    cell: *cell,
                }),
            )
            .unwrap();
        }
        write_frame(&mut dispatcher_out, &Frame::Shutdown).unwrap();

        let mut worker_out = Vec::new();
        serve(dispatcher_out.as_slice(), &mut worker_out).unwrap();

        let mut r = worker_out.as_slice();
        match next_data_frame(&mut r) {
            Some(Frame::Hello(h)) => assert_eq!(h.version, PROTOCOL_VERSION),
            other => panic!("expected hello, got {other:?}"),
        }
        let mut outputs = Vec::new();
        while let Some(frame) = next_data_frame(&mut r) {
            match frame {
                Frame::Response(resp) => {
                    assert_eq!(resp.id, outputs.len() as u64, "answers arrive in order");
                    outputs.push(resp.output);
                }
                other => panic!("expected a response, got {other:?}"),
            }
        }
        outputs
    }

    /// Next non-heartbeat frame, or `None` at EOF.
    fn next_data_frame(r: &mut &[u8]) -> Option<Frame> {
        loop {
            match read_frame(r).unwrap() {
                Some(Frame::Heartbeat) => continue,
                other => return other,
            }
        }
    }

    #[test]
    fn served_cells_match_the_in_process_runner_bit_for_bit() {
        let cfg = SweepConfig {
            ks: vec![0, 1, 2],
            trials: 3,
            seed: 2012,
            solvers: vec![SolverKind::GreedyAll, SolverKind::RandK, SolverKind::RandW],
        };
        let cells = sweep_cells(&cfg);
        let outputs = converse(diamond_init(cfg.ks.clone()), &cells);
        let via_worker = reduce_cells(&cfg, outputs);

        let g = DiGraph::from_pairs(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let problem = Problem::new(&g, NodeId::new(0)).unwrap();
        let in_process = run_sweep_cells(&problem, &cfg, &RunnerOptions::with_jobs(1)).unwrap();

        assert_eq!(via_worker.series.len(), in_process.series.len());
        for (a, b) in via_worker.series.iter().zip(&in_process.series) {
            assert_eq!(a.label, b.label);
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.0, pb.0);
                assert_eq!(pa.1.to_bits(), pb.1.to_bits(), "{}@k={}", a.label, pa.0);
            }
        }
    }

    #[test]
    fn eof_before_init_is_a_clean_exit() {
        let mut worker_out = Vec::new();
        serve(&[][..], &mut worker_out).unwrap();
        // It still said hello first.
        assert!(matches!(
            next_data_frame(&mut worker_out.as_slice()),
            Some(Frame::Hello(_))
        ));
    }

    #[test]
    fn remote_session_treats_preinit_eof_as_a_refusal() {
        let err = serve_session(&[][..], Vec::new(), Some("sesame"), &Chaos::inert()).unwrap_err();
        assert!(err.contains("bad token or protocol version"), "{err}");
    }

    #[test]
    fn remote_hello_carries_the_token() {
        let mut worker_out = Vec::new();
        let _ = serve_session(&[][..], &mut worker_out, Some("sesame"), &Chaos::inert());
        match next_data_frame(&mut worker_out.as_slice()) {
            Some(Frame::Hello(h)) => assert_eq!(h.token.as_deref(), Some("sesame")),
            other => panic!("expected hello, got {other:?}"),
        }
    }

    #[test]
    fn a_session_heartbeats_while_waiting_on_a_slow_dispatcher() {
        // A pipe that delivers init and then stalls long enough for
        // at least one heartbeat before EOF.
        struct SlowThenEof(Vec<u8>, bool);
        impl Read for SlowThenEof {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if !self.0.is_empty() {
                    let n = buf.len().min(self.0.len());
                    buf[..n].copy_from_slice(&self.0[..n]);
                    self.0.drain(..n);
                    return Ok(n);
                }
                if !self.1 {
                    self.1 = true;
                    std::thread::sleep(HEARTBEAT_INTERVAL + Duration::from_millis(150));
                }
                Ok(0)
            }
        }
        let mut framed = Vec::new();
        write_frame(&mut framed, &Frame::Init(diamond_init(vec![0]))).unwrap();
        let mut worker_out = Vec::new();
        serve(SlowThenEof(framed, false), &mut worker_out).unwrap();
        let mut r = worker_out.as_slice();
        let mut beats = 0usize;
        while let Some(frame) = read_frame(&mut r).unwrap() {
            if matches!(frame, Frame::Heartbeat) {
                beats += 1;
            }
        }
        assert!(beats >= 1, "expected at least one heartbeat, saw {beats}");
    }

    #[test]
    fn reconnect_backoff_doubles_and_caps() {
        assert_eq!(reconnect_backoff(1), Duration::from_millis(100));
        assert_eq!(reconnect_backoff(2), Duration::from_millis(200));
        assert_eq!(reconnect_backoff(4), Duration::from_millis(800));
        assert_eq!(reconnect_backoff(7), Duration::from_millis(5_000));
        assert_eq!(reconnect_backoff(u32::MAX), Duration::from_millis(5_000));
    }

    #[test]
    fn connect_to_nowhere_exhausts_retries_with_a_described_error() {
        // Reserved port with nothing listening: bind, learn the addr,
        // drop the listener, then dial it.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err = serve_connect(&addr, "sesame", 0).unwrap_err();
        assert!(err.contains("cannot reach a dispatcher"), "{err}");
    }

    #[test]
    fn garbage_input_is_a_described_error() {
        let garbage = b"this is not a frame stream".to_vec();
        let err = serve(garbage.as_slice(), Vec::new()).unwrap_err();
        assert!(err.contains("frame") || err.contains("exceeds"), "{err}");
    }

    #[test]
    fn anything_but_init_first_is_a_protocol_error() {
        let mut dispatcher_out = Vec::new();
        write_frame(
            &mut dispatcher_out,
            &Frame::Request(CellRequest {
                id: 0,
                cell: fp_results::sweep::Cell::Curve {
                    solver: SolverKind::GreedyAll,
                },
            }),
        )
        .unwrap();
        let err = serve(dispatcher_out.as_slice(), Vec::new()).unwrap_err();
        assert!(err.contains("expected init"), "{err}");
    }

    #[test]
    fn invalid_init_graphs_are_refused() {
        let bad = SweepInit {
            nodes: 2,
            edges: vec![(0, 5)], // target out of range
            source: 0,
            ks: vec![0, 1],
        };
        let mut dispatcher_out = Vec::new();
        write_frame(&mut dispatcher_out, &Frame::Init(bad)).unwrap();
        let err = serve(dispatcher_out.as_slice(), Vec::new()).unwrap_err();
        assert!(err.contains("invalid graph"), "{err}");

        let bad_source = SweepInit {
            nodes: 2,
            edges: vec![(0, 1)],
            source: 9,
            ks: vec![0],
        };
        let mut dispatcher_out = Vec::new();
        write_frame(&mut dispatcher_out, &Frame::Init(bad_source)).unwrap();
        let err = serve(dispatcher_out.as_slice(), Vec::new()).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }
}
