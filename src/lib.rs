//! Workspace facade: re-exports [`fp_core`] so the root package's
//! `tests/` and `examples/` (and downstream users who want a single
//! dependency) build against one crate.
//!
//! See `fp_core` for the full documentation; the quickstart lives in
//! `examples/quickstart.rs`.

pub use fp_core::*;
